"""The software driver and job runner."""

import pytest

from repro.apps import JobRunner, JobSpec, golden_outputs, make_baseline_netlist
from repro.apps.driver import run_accelerator_job
from repro.kernel import Simulator


def build(accels=("fir", "xtea")):
    netlist, info = make_baseline_netlist(accels)
    sim = Simulator()
    design = netlist.elaborate(sim)
    return sim, design, info


class TestRunAcceleratorJob:
    def test_job_on_live_system(self):
        sim, design, info = build()
        out = {}

        def task(cpu):
            result = yield from run_accelerator_job(
                cpu,
                info.accel_bases["fir"],
                [10, 20, 30],
                param=1,
                coefs=[1 << 15],
                buffer_words=info.buffer_words,
            )
            out["result"] = result

        design["cpu"].run_task(task)
        sim.run()
        assert out["result"] == [10, 20, 30]

    def test_validation(self):
        sim, design, info = build()

        def empty_job(cpu):
            yield from run_accelerator_job(cpu, info.accel_bases["fir"], [])

        def oversized_job(cpu):
            yield from run_accelerator_job(
                cpu, info.accel_bases["fir"], [1] * 10, buffer_words=4
            )

        design["cpu"].run_task(empty_job)
        with pytest.raises(Exception, match="at least one"):
            sim.run()

        sim2, design2, info2 = build()
        design2["cpu"].run_task(oversized_job)
        with pytest.raises(Exception, match="exceeds buffer"):
            sim2.run()

    def test_n_outputs_controls_readback(self):
        sim, design, info = build()
        out = {}

        def task(cpu):
            result = yield from run_accelerator_job(
                cpu,
                info.accel_bases["fir"],
                [1, 2, 3, 4],
                param=1,
                coefs=[1 << 15],
                n_outputs=2,
                buffer_words=info.buffer_words,
            )
            out["result"] = result

        design["cpu"].run_task(task)
        sim.run()
        assert out["result"] == [1, 2]


class TestJobSpec:
    def test_label_defaults_to_accel(self):
        spec = JobSpec("fir", [1, 2])
        assert spec.label == "fir"
        assert JobSpec("fir", [1], label="custom").label == "custom"


class TestJobRunner:
    def test_results_in_issue_order_with_latencies(self):
        sim, design, info = build()
        runner = JobRunner(info.accel_bases, info.buffer_words)
        jobs = [
            JobSpec("fir", [5, 6, 7], param=1, coefs=[1 << 15], label="j0"),
            JobSpec("xtea", [1, 2], param=0, coefs=[1, 2, 3, 4], label="j1"),
        ]
        design["cpu"].run_task(runner.task(jobs))
        sim.run()
        assert [r.spec.label for r in runner.results] == ["j0", "j1"]
        assert all(r.latency_ns > 0 for r in runner.results)
        assert runner.results[1].start_ns >= runner.results[0].end_ns
        for result in runner.results:
            assert result.outputs == golden_outputs(result.spec)

    def test_latency_aggregations(self):
        sim, design, info = build()
        runner = JobRunner(info.accel_bases, info.buffer_words)
        jobs = [
            JobSpec("fir", [1, 2], param=1, coefs=[1 << 15]),
            JobSpec("fir", [3, 4], param=1, coefs=[1 << 15]),
        ]
        design["cpu"].run_task(runner.task(jobs))
        sim.run()
        by_accel = runner.latency_by_accel()
        assert set(by_accel) == {"fir"}
        assert by_accel["fir"] == pytest.approx(runner.total_latency_ns)

    def test_unknown_accel_key_error(self):
        sim, design, info = build()
        runner = JobRunner(info.accel_bases, info.buffer_words)
        design["cpu"].run_task(runner.task([JobSpec("ghost", [1])]))
        with pytest.raises(Exception, match="ghost"):
            sim.run()
