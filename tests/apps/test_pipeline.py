"""Accelerator pipelines: CPU- and DMA-mediated data movement."""

import pytest

from repro.apps import (
    PipelineStage,
    golden_pipeline,
    make_baseline_netlist,
    make_reconfigurable_netlist,
    run_cpu_mediated_pipeline,
    run_dma_mediated_pipeline,
)
from repro.bus import DmaController
from repro.kernel import Simulator
from repro.tech import MORPHOSYS

STAGES = [
    PipelineStage("fir", param=2, coefs=[1 << 14, 1 << 13]),
    PipelineStage("xtea", param=0, coefs=[1, 2, 3, 4]),
]
INPUTS = [100 * i - 300 for i in range(16)]


def build(reconfigurable=False, with_dma=True):
    maker = make_reconfigurable_netlist if reconfigurable else make_baseline_netlist
    kwargs = {"tech": MORPHOSYS} if reconfigurable else {}
    netlist, info = maker(("fir", "xtea"), **kwargs)
    if with_dma:
        netlist.add("dma", DmaController, master_of="system_bus")
    sim = Simulator()
    design = netlist.elaborate(sim)
    return sim, design, info


class TestGoldenPipeline:
    def test_composes_stage_golden_models(self):
        out = golden_pipeline(STAGES, INPUTS)
        assert len(out) == len(INPUTS)
        # Composition differs from single-stage results.
        assert out != golden_pipeline(STAGES[:1], INPUTS)


class TestCpuMediated:
    @pytest.mark.parametrize("reconfigurable", [False, True], ids=["dedicated", "drcf"])
    def test_matches_golden(self, reconfigurable):
        sim, design, info = build(reconfigurable, with_dma=False)
        result = {}

        def task(cpu):
            result["out"] = yield from run_cpu_mediated_pipeline(
                cpu, info.accel_bases, STAGES, INPUTS,
                buffer_words=info.buffer_words,
            )

        design["cpu"].run_task(task)
        sim.run()
        assert result["out"] == golden_pipeline(STAGES, INPUTS)


class TestDmaMediated:
    @pytest.mark.parametrize("reconfigurable", [False, True], ids=["dedicated", "drcf"])
    def test_matches_golden(self, reconfigurable):
        sim, design, info = build(reconfigurable)
        result = {}

        def task(cpu):
            result["out"] = yield from run_dma_mediated_pipeline(
                cpu, design["dma"], info.accel_bases, STAGES, INPUTS,
                buffer_words=info.buffer_words,
            )

        design["cpu"].run_task(task)
        sim.run()
        assert result["out"] == golden_pipeline(STAGES, INPUTS)

    def test_dma_moves_interstage_data(self):
        sim, design, info = build(reconfigurable=False)

        def task(cpu):
            yield from run_dma_mediated_pipeline(
                cpu, design["dma"], info.accel_bases, STAGES, INPUTS,
                buffer_words=info.buffer_words,
            )

        design["cpu"].run_task(task)
        sim.run()
        assert design["dma"].words_moved == len(INPUTS)
        assert design["system_bus"].monitor.words_by_tag("pipeline") > 0

    def test_interdrcf_dma_burst_thrash(self):
        """DMA between two contexts of one single-slot DRCF switches per
        burst chunk — small bursts multiply the context switches."""
        from repro.tech import VARICORE

        switch_counts = {}
        for burst in (4, 16):
            netlist, info = make_reconfigurable_netlist(("fir", "xtea"), tech=VARICORE)
            netlist.add("dma", DmaController, master_of="system_bus")
            sim = Simulator()
            design = netlist.elaborate(sim)

            def task(cpu, design=design, burst=burst, info=info):
                yield from run_dma_mediated_pipeline(
                    cpu, design["dma"], info.accel_bases, STAGES, INPUTS,
                    buffer_words=info.buffer_words, dma_burst_words=burst,
                )

            design["cpu"].run_task(task)
            sim.run()
            switch_counts[burst] = design["drcf1"].stats.total_switches
        # 16 words in bursts of 4: each chunk reads ctx A then writes ctx B.
        assert switch_counts[4] > switch_counts[16]

    def test_empty_pipeline_rejected(self):
        sim, design, info = build()

        def task(cpu):
            yield from run_dma_mediated_pipeline(
                cpu, design["dma"], info.accel_bases, [], INPUTS,
            )

        design["cpu"].run_task(task)
        with pytest.raises(Exception, match="at least one stage"):
            sim.run()
