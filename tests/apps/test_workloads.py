"""Workload generators: determinism, locality structure, golden outputs."""

import pytest

from repro.apps import (
    batched_jobs,
    frame_interleaved_jobs,
    golden_outputs,
    random_mix_jobs,
    switch_count_lower_bound,
)
from repro.apps.workloads import DEFAULT_SIZES

ACCELS = ("fir", "fft", "viterbi", "xtea", "dct", "matmul")


class TestDeterminism:
    def test_same_seed_same_jobs(self):
        a = frame_interleaved_jobs(ACCELS, 2, seed=9)
        b = frame_interleaved_jobs(ACCELS, 2, seed=9)
        assert [(j.accel, j.inputs, j.param, j.coefs) for j in a] == [
            (j.accel, j.inputs, j.param, j.coefs) for j in b
        ]

    def test_different_seed_different_data(self):
        a = frame_interleaved_jobs(("fir",), 1, seed=1)
        b = frame_interleaved_jobs(("fir",), 1, seed=2)
        assert a[0].inputs != b[0].inputs


class TestLocalityStructure:
    def test_interleaved_cycles_through_blocks(self):
        jobs = frame_interleaved_jobs(("fir", "fft"), 3)
        assert [j.accel for j in jobs] == ["fir", "fft"] * 3

    def test_batched_groups_blocks(self):
        jobs = batched_jobs(("fir", "fft"), 3)
        assert [j.accel for j in jobs] == ["fir"] * 3 + ["fft"] * 3

    def test_same_total_work(self):
        inter = frame_interleaved_jobs(("fir", "fft"), 4)
        batch = batched_jobs(("fir", "fft"), 4)
        assert sorted(j.accel for j in inter) == sorted(j.accel for j in batch)

    def test_switch_lower_bound(self):
        inter = frame_interleaved_jobs(("fir", "fft"), 3)
        batch = batched_jobs(("fir", "fft"), 3)
        assert switch_count_lower_bound(inter) == 6
        assert switch_count_lower_bound(batch) == 2
        assert switch_count_lower_bound([]) == 0

    def test_random_mix_respects_count_and_pool(self):
        jobs = random_mix_jobs(("fir", "xtea"), 10, seed=3)
        assert len(jobs) == 10
        assert set(j.accel for j in jobs) <= {"fir", "xtea"}


class TestJobShapes:
    @pytest.mark.parametrize("accel", ACCELS)
    def test_every_kind_has_golden_model(self, accel):
        jobs = frame_interleaved_jobs((accel,), 1, seed=5)
        out = golden_outputs(jobs[0])
        assert isinstance(out, list) and out

    def test_fft_interleaved_length(self):
        job = frame_interleaved_jobs(("fft",), 1)[0]
        assert len(job.inputs) == 2 * job.param

    def test_viterbi_includes_tail_symbols(self):
        job = frame_interleaved_jobs(("viterbi",), 1)[0]
        assert len(job.inputs) == job.param + 6  # K-1 tail
        assert job.n_outputs == job.param

    def test_matmul_two_operands(self):
        job = frame_interleaved_jobs(("matmul",), 1)[0]
        assert len(job.inputs) == 2 * job.param * job.param

    def test_size_overrides(self):
        jobs = frame_interleaved_jobs(("fir",), 1, sizes={"fir": 16})
        assert len(jobs[0].inputs) == 16

    def test_jobs_fit_default_buffers(self):
        for job in frame_interleaved_jobs(ACCELS, 1):
            assert len(job.inputs) <= 256

    def test_unknown_kind(self):
        from repro.apps.workloads import _make_job
        import random

        with pytest.raises(KeyError):
            _make_job("gpu", random.Random(0), DEFAULT_SIZES, "x")

    def test_golden_unknown_kind(self):
        from repro.apps import JobSpec

        with pytest.raises(KeyError):
            golden_outputs(JobSpec("gpu", [1]))
