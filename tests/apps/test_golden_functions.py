"""Golden (executable-specification) functions — with property tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.accelerators import (
    bit_reverse_permute,
    convolutional_encode,
    dct_1d,
    dct_block,
    dct_blocks,
    fft_fixed,
    fir_filter,
    matmul_int,
    viterbi_decode,
    xtea_decrypt_block,
    xtea_encrypt_block,
    xtea_process,
)

samples16 = st.integers(-30_000, 30_000)


class TestFir:
    def test_impulse_response_reproduces_coefs(self):
        coefs = [1 << 15, 2 << 15, 3 << 15]  # Q15 values 1, 2, 3
        impulse = [1] + [0] * 5
        assert fir_filter(impulse, coefs) == [1, 2, 3, 0, 0, 0]

    def test_identity_filter(self):
        coefs = [1 << 15]
        data = [5, -3, 7]
        assert fir_filter(data, coefs) == data

    def test_saturation(self):
        coefs = [0x7FFF] * 8
        data = [2**30] * 8
        out = fir_filter(data, coefs)
        assert out[-1] == 2**31 - 1  # saturated, not wrapped

    @given(st.lists(samples16, min_size=1, max_size=32), st.lists(samples16, min_size=1, max_size=8))
    def test_linearity_in_input_scaling(self, data, coefs):
        # FIR is linear before saturation; small values never saturate.
        small = [d // 256 for d in data]
        small_coefs = [c // 256 for c in coefs]
        base = fir_filter(small, small_coefs)
        doubled = fir_filter([2 * d for d in small], small_coefs)
        # >> 15 truncation makes exact doubling hold only approximately.
        for b, d in zip(base, doubled):
            assert abs(d - 2 * b) <= len(coefs) + 1

    @given(st.lists(samples16, min_size=1, max_size=32))
    def test_zero_coefs_zero_output(self, data):
        assert fir_filter(data, [0, 0, 0]) == [0] * len(data)

    def test_matches_numpy_convolve(self):
        rng = np.random.default_rng(7)
        data = rng.integers(-20000, 20000, 48).tolist()
        coefs = rng.integers(-8000, 8000, 6).tolist()
        ours = fir_filter(data, coefs)
        ref = np.convolve(data, coefs)[: len(data)]
        # Our >>15 floors each output; numpy keeps full precision.
        for got, exact in zip(ours, ref):
            assert got == int(exact) >> 15


class TestFft:
    def test_bit_reverse_permute(self):
        assert bit_reverse_permute(list(range(8)), 3) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_impulse_gives_flat_spectrum(self):
        n = 8
        data = [0] * (2 * n)
        data[0] = n << 10  # real impulse, scaled to survive the 1/N scaling
        out = fft_fixed(data, n)
        res = [out[2 * i] for i in range(n)]
        ims = [out[2 * i + 1] for i in range(n)]
        assert all(abs(r - res[0]) <= 1 for r in res)
        assert all(abs(i) <= 1 for i in ims)

    def test_dc_input_concentrates_in_bin0(self):
        n = 8
        data = []
        for _ in range(n):
            data += [1 << 12, 0]
        out = fft_fixed(data, n)
        assert out[0] == pytest.approx(1 << 12, abs=8)  # DC bin = mean
        for i in range(1, n):
            assert abs(out[2 * i]) <= 2 and abs(out[2 * i + 1]) <= 2

    def test_matches_numpy_within_quantization(self):
        rng = np.random.default_rng(1)
        n = 32
        re = rng.integers(-4000, 4000, n)
        im = rng.integers(-4000, 4000, n)
        data = []
        for r, i in zip(re, im):
            data += [int(r), int(i)]
        out = fft_fixed(data, n)
        ref = np.fft.fft(re + 1j * im) / n
        got = np.array([out[2 * i] + 1j * out[2 * i + 1] for i in range(n)])
        # Fixed-point error: a few LSBs per stage.
        assert np.max(np.abs(got - ref)) < 16

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            fft_fixed([0] * 12, 6)  # not a power of two
        with pytest.raises(ValueError):
            fft_fixed([0] * 4, 8)  # too few words

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=20)
    def test_parseval_shape(self, log_n, data):
        # Energy can only shrink under the per-stage >>1 scaling; output
        # must stay bounded by the input magnitude (no overflow blowup).
        n = 1 << log_n
        words = data.draw(
            st.lists(st.integers(-(1 << 14), 1 << 14), min_size=2 * n, max_size=2 * n)
        )
        out = fft_fixed(words, n)
        peak_in = max(abs(w) for w in words) or 1
        assert max(abs(w) for w in out) <= 4 * peak_in


class TestDct:
    def test_constant_block_concentrates_dc(self):
        block = [100] * 64
        out = dct_block(block)
        assert out[0] == pytest.approx(800, abs=2)  # 8 * 100 from two sqrt(1/8) passes
        assert all(abs(v) <= 1 for v in out[1:])

    def test_dct_1d_validates_length(self):
        with pytest.raises(ValueError):
            dct_1d([1, 2, 3])

    def test_dct_block_validates_length(self):
        with pytest.raises(ValueError):
            dct_block([0] * 63)

    def test_multi_block_independence(self):
        a = [7] * 64
        b = [-3] * 64
        combined = dct_blocks(a + b)
        assert combined[:64] == dct_block(a)
        assert combined[64:] == dct_block(b)

    def test_matches_scipy_dct(self):
        from scipy.fft import dctn

        rng = np.random.default_rng(2)
        block = rng.integers(-128, 128, 64).tolist()
        ours = np.array(dct_block(block), dtype=float).reshape(8, 8)
        ref = dctn(np.array(block, dtype=float).reshape(8, 8), norm="ortho")
        assert np.max(np.abs(ours - ref)) < 2.0


class TestViterbi:
    def test_decode_inverts_encode(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0]
        symbols = convolutional_encode(bits)
        assert viterbi_decode(symbols, len(bits)) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=25)
    def test_roundtrip_property(self, bits):
        symbols = convolutional_encode(bits)
        assert viterbi_decode(symbols, len(bits)) == bits

    def test_corrects_single_symbol_error(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 4
        symbols = convolutional_encode(bits)
        symbols[5] ^= 0x3  # corrupt both bits of one symbol
        assert viterbi_decode(symbols, len(bits)) == bits

    def test_corrects_scattered_bit_errors(self):
        bits = [0, 1, 1, 0, 1, 0, 0, 1] * 4
        symbols = convolutional_encode(bits)
        for pos in (3, 14, 25):
            symbols[pos] ^= 0x1
        assert viterbi_decode(symbols, len(bits)) == bits

    def test_too_few_symbols(self):
        with pytest.raises(ValueError):
            viterbi_decode([0] * 5, 10)


class TestXtea:
    def test_known_roundtrip(self):
        key = [0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210]
        v0, v1 = xtea_encrypt_block(0xDEADBEEF, 0xCAFEBABE, key)
        assert (v0, v1) != (0xDEADBEEF, 0xCAFEBABE)
        assert xtea_decrypt_block(v0, v1, key) == (0xDEADBEEF, 0xCAFEBABE)

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=4),
    )
    def test_roundtrip_property(self, v0, v1, key):
        c0, c1 = xtea_encrypt_block(v0, v1, key)
        assert xtea_decrypt_block(c0, c1, key) == (v0, v1)

    def test_process_stream(self):
        key = [1, 2, 3, 4]
        words = list(range(10))
        cipher = xtea_process(words, key)
        assert xtea_process(cipher, key, decrypt=True) == words

    def test_wrong_key_fails_to_decrypt(self):
        cipher = xtea_process([5, 6], [1, 2, 3, 4])
        assert xtea_process(cipher, [9, 9, 9, 9], decrypt=True) != [5, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            xtea_process([1], [1, 2, 3, 4])
        with pytest.raises(ValueError):
            xtea_process([1, 2], [1, 2])


class TestMatmul:
    def test_identity(self):
        n = 4
        eye = [1 if i == j else 0 for i in range(n) for j in range(n)]
        a = list(range(16))
        assert matmul_int(a, eye, n) == a
        assert matmul_int(eye, a, n) == a

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=25)
    def test_matches_numpy(self, n, data):
        values = st.integers(-100, 100)
        a = data.draw(st.lists(values, min_size=n * n, max_size=n * n))
        b = data.draw(st.lists(values, min_size=n * n, max_size=n * n))
        ours = matmul_int(a, b, n)
        ref = (
            np.array(a, dtype=np.int64).reshape(n, n)
            @ np.array(b, dtype=np.int64).reshape(n, n)
        ).flatten()
        assert ours == [int(v) for v in ref]

    def test_wrapping_on_overflow(self):
        big = [2**20] * 4
        out = matmul_int(big, big, 2)
        # 2 * 2^40 wraps into 32-bit signed range.
        assert all(-(2**31) <= v < 2**31 for v in out)

    def test_validation(self):
        with pytest.raises(ValueError):
            matmul_int([1], [1, 2, 3, 4], 2)
