"""Streaming (bus-master) accelerators, standalone and inside a DRCF."""

import pytest

from repro.apps.accelerators import (
    CMD_START,
    REG_CTRL,
    REG_DST,
    REG_JOBSIZE,
    REG_PARAM,
    REG_SRC,
    REG_STATUS,
    REG_COEF_BASE,
    STATUS_DONE,
    StreamingFirAccelerator,
    fir_filter,
    to_words,
)
from repro.bus import Bus, ConfigMemory, Memory
from repro.core import Context, Drcf, context_parameters_for
from repro.kernel import Simulator
from repro.tech import MORPHOSYS

SRC = 0x0100
DST = 0x0800
SAMPLES = [500, -200, 350, 125, -75, 60, 10, -20]
COEFS = [1 << 14, 1 << 13]


def build(wrapped: bool):
    sim = Simulator()
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6, protocol="split")
    mem = Memory("mem", sim=sim, base=0, size_words=1024)
    bus.register_slave(mem)
    acc = StreamingFirAccelerator("sfir", sim=sim, base=0x4000, buffer_words=64)
    if wrapped:
        cfg = ConfigMemory("cfg", sim=sim, base=0x100000, size_words=1 << 16)
        bus.register_slave(cfg)
        params = context_parameters_for(MORPHOSYS, acc.gates, 0x100000)
        cfg.register_context_region("sfir", params.config_addr, params.size_bytes)
        drcf = Drcf(
            "drcf", sim=sim,
            contexts=[Context("sfir", acc, params, gates=acc.gates)],
            tech=MORPHOSYS,
        )
        drcf.mst_port.bind(bus)
        bus.register_slave(drcf)
        acc.mst_port.bind(drcf.mst_port)  # the paper's generated binding
    else:
        acc.mst_port.bind(bus)
        bus.register_slave(acc)
    mem.poke(SRC, to_words(SAMPLES))
    return sim, bus, mem, acc


def drive_job(bus, base):
    yield from bus.write(base + REG_SRC, SRC, master="cpu")
    yield from bus.write(base + REG_DST, DST, master="cpu")
    yield from bus.write(base + REG_COEF_BASE, to_words(COEFS), master="cpu")
    yield from bus.write(base + REG_JOBSIZE, len(SAMPLES), master="cpu")
    yield from bus.write(base + REG_PARAM, len(COEFS), master="cpu")
    yield from bus.write(base + REG_CTRL, CMD_START, master="cpu")
    while True:
        status = yield from bus.read(base + REG_STATUS, 1, master="cpu")
        if status[0] & STATUS_DONE:
            break


class TestStandalone:
    def test_streams_compute_and_store(self):
        sim, bus, mem, acc = build(wrapped=False)

        def body():
            yield from drive_job(bus, 0x4000)

        sim.spawn("cpu", body)
        sim.run()
        expected = to_words(fir_filter(SAMPLES, COEFS))
        assert mem.peek(DST, len(SAMPLES)) == expected
        assert acc.words_streamed == 2 * len(SAMPLES)
        assert acc.jobs_done == 1

    def test_master_traffic_tagged(self):
        sim, bus, mem, acc = build(wrapped=False)

        def body():
            yield from drive_job(bus, 0x4000)

        sim.spawn("cpu", body)
        sim.run()
        assert bus.monitor.words_by_tag("stream") == 2 * len(SAMPLES)

    def test_src_dst_registers_readback(self):
        sim, bus, mem, acc = build(wrapped=False)
        out = {}

        def body():
            yield from bus.write(0x4000 + REG_SRC, 0xAA0, master="cpu")
            data = yield from bus.read(0x4000 + REG_SRC, 1, master="cpu")
            out["src"] = data[0]

        sim.spawn("cpu", body)
        sim.run()
        assert out["src"] == 0xAA0


class TestInsideDrcf:
    def test_master_traffic_rides_the_fabric_port(self):
        sim, bus, mem, acc = build(wrapped=True)

        def body():
            yield from drive_job(bus, 0x4000)

        sim.spawn("cpu", body)
        sim.run()
        expected = to_words(fir_filter(SAMPLES, COEFS))
        assert mem.peek(DST, len(SAMPLES)) == expected
        # The stream transactions are attributed to the accelerator (whose
        # port chains through the DRCF), distinct from config traffic.
        assert bus.monitor.words_by_tag("stream") == 2 * len(SAMPLES)
        assert bus.monitor.words_by_tag("config") > 0
        masters = bus.monitor.words_by_master()
        assert any("sfir" in master for master in masters)

    def test_busy_handshake_blocks_switch_during_stream(self):
        sim, bus, mem, acc = build(wrapped=True)
        # While streaming, the module is busy; the scheduler protocol sees
        # the flag exactly as with buffer-fed accelerators.
        seen = {}

        def body():
            yield from bus.write(0x4000 + REG_SRC, SRC, master="cpu")
            yield from bus.write(0x4000 + REG_DST, DST, master="cpu")
            yield from bus.write(0x4000 + REG_COEF_BASE, to_words(COEFS), master="cpu")
            yield from bus.write(0x4000 + REG_JOBSIZE, len(SAMPLES), master="cpu")
            yield from bus.write(0x4000 + REG_PARAM, len(COEFS), master="cpu")
            yield from bus.write(0x4000 + REG_CTRL, CMD_START, master="cpu")
            seen["busy_after_start"] = acc.busy
            while True:
                status = yield from bus.read(0x4000 + REG_STATUS, 1, master="cpu")
                if status[0] & STATUS_DONE:
                    break

        sim.spawn("cpu", body)
        sim.run()
        assert seen["busy_after_start"]
        assert not acc.busy
