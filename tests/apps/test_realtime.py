"""Real-time frame workload: release, consumption, deadline statistics."""

import pytest

from repro.apps import (
    FrameRecord,
    FrameSource,
    RealTimeReport,
    frame_consumer_task,
    frame_interleaved_jobs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
)
from repro.kernel import Simulator, us
from repro.tech import MORPHOSYS, VIRTEX2PRO


def make_frame_factory(accels=("fir", "xtea")):
    def make_frame(index):
        return frame_interleaved_jobs(accels, 1, seed=100 + index)

    return make_frame


def run_realtime(netlist, info, period, n_frames=6):
    sim = Simulator()
    design = netlist.elaborate(sim)
    source = FrameSource(
        "frames",
        parent=design.top,
        period=period,
        n_frames=n_frames,
        make_frame=make_frame_factory(),
    )
    records = []
    design["cpu"].run_task(
        frame_consumer_task(source, info.accel_bases, records,
                            buffer_words=info.buffer_words)
    )
    sim.run()
    return source, records


class TestFrameSource:
    def test_releases_at_period(self):
        netlist, info = make_baseline_netlist(("fir", "xtea"))
        source, records = run_realtime(netlist, info, us(50), n_frames=4)
        assert source.released == 4
        assert len(records) == 4
        releases = sorted(r.release_ns for r in records)
        assert releases == [0.0, 50_000.0, 100_000.0, 150_000.0]

    def test_frames_processed_in_order(self):
        netlist, info = make_baseline_netlist(("fir", "xtea"))
        _, records = run_realtime(netlist, info, us(50), n_frames=4)
        assert [r.index for r in records] == [0, 1, 2, 3]

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            FrameSource("f", sim=sim, period=us(1), n_frames=0, make_frame=lambda i: [])


class TestRealTimeReport:
    def _records(self, latencies):
        return [
            FrameRecord(index=i, release_ns=0.0, completion_ns=lat)
            for i, lat in enumerate(latencies)
        ]

    def test_miss_counting(self):
        report = RealTimeReport(deadline_ns=100.0, records=self._records([50, 150, 99, 101]))
        assert report.misses == 2
        assert report.miss_rate == 0.5
        assert report.max_latency_ns == 150
        assert report.mean_latency_ns == 100.0

    def test_backlog_detection(self):
        stable = RealTimeReport(100.0, self._records([50, 52, 51, 49]))
        growing = RealTimeReport(100.0, self._records([50, 100, 200, 400]))
        assert not stable.backlog_grows()
        assert growing.backlog_grows()

    def test_empty_report(self):
        report = RealTimeReport(deadline_ns=10.0)
        assert report.miss_rate == 0.0
        assert report.summary()["frames"] == 0


class TestDeadlinesByArchitecture:
    def test_slack_period_meets_deadlines_everywhere(self):
        for maker, kwargs in (
            (make_baseline_netlist, {}),
            (make_reconfigurable_netlist, {"tech": MORPHOSYS}),
        ):
            netlist, info = maker(("fir", "xtea"), **kwargs)
            _, records = run_realtime(netlist, info, us(500))
            report = RealTimeReport(deadline_ns=500_000.0, records=records)
            assert report.miss_rate == 0.0, maker.__name__

    def test_fine_grain_fabric_backlogs_at_tight_period(self):
        # Virtex full-context switches take milliseconds; a 200 us frame
        # period is unsustainable and the backlog grows frame over frame.
        netlist, info = make_reconfigurable_netlist(("fir", "xtea"), tech=VIRTEX2PRO)
        _, records = run_realtime(netlist, info, us(200))
        report = RealTimeReport(deadline_ns=200_000.0, records=records)
        assert report.miss_rate == 1.0
        assert report.backlog_grows()
