"""Property-based bus validation against a reference memory model."""

from hypothesis import given, settings, strategies as st

from repro.bus import Bus, Memory
from repro.kernel import Simulator, ns

# One operation: (is_write, word_index, value, burst_len)
operations = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 56),
        st.integers(0, 2**32 - 1),
        st.integers(1, 8),
    ),
    min_size=1,
    max_size=25,
)


def run_program(protocol, ops):
    sim = Simulator()
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6, protocol=protocol)
    mem = Memory("mem", sim=sim, base=0, size_words=64)
    bus.register_slave(mem)
    model = {}
    log = []

    def body():
        for is_write, index, value, burst in ops:
            addr = 4 * index
            if is_write:
                payload = [(value + k) & 0xFFFFFFFF for k in range(burst)]
                yield from bus.write(addr, payload, master="cpu")
                for k in range(burst):
                    model[index + k] = payload[k]
            else:
                data = yield from bus.read(addr, burst, master="cpu")
                expected = [model.get(index + k, 0) for k in range(burst)]
                log.append((data, expected))

    sim.spawn("cpu", body)
    sim.run()
    return sim, bus, mem, model, log


class TestSingleMasterConsistency:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_reads_match_reference_model(self, ops):
        # Keep bursts inside the memory.
        ops = [(w, i, v, min(b, 64 - i)) for w, i, v, b in ops]
        for protocol in ("blocking", "split"):
            _, _, mem, model, log = run_program(protocol, ops)
            for data, expected in log:
                assert data == expected
            # Final memory state matches the model exactly.
            for index, value in model.items():
                assert mem.peek(4 * index) == [value]

    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_monitor_counts_every_word(self, ops):
        ops = [(w, i, v, min(b, 64 - i)) for w, i, v, b in ops]
        _, bus, mem, _, _ = run_program("blocking", ops)
        issued = sum(b for _, _, _, b in ops)
        assert bus.monitor.total_words == issued
        assert bus.monitor.transaction_count == len(ops)
        assert mem.read_word_count + mem.write_word_count == issued

    @given(operations)
    @settings(max_examples=15, deadline=None)
    def test_protocols_agree_on_results(self, ops):
        ops = [(w, i, v, min(b, 64 - i)) for w, i, v, b in ops]
        results = {}
        for protocol in ("blocking", "split"):
            _, _, _, model, log = run_program(protocol, ops)
            results[protocol] = ([d for d, _ in log], dict(model))
        assert results["blocking"] == results["split"]

    @given(operations)
    @settings(max_examples=15, deadline=None)
    def test_time_advances_monotonically_with_work(self, ops):
        ops = [(w, i, v, min(b, 64 - i)) for w, i, v, b in ops]
        sim, bus, _, _, _ = run_program("blocking", ops)
        # At minimum each word costs one data beat; busy time reflects it.
        issued = sum(b for _, _, _, b in ops)
        assert bus.monitor.busy_time() >= ns(10) * issued
        assert sim.now >= bus.monitor.busy_time()
