"""Bus bridge: windowed forwarding between buses."""

import pytest

from repro.bus import Bus, BusBridge, Memory
from repro.kernel import SimulationError, Simulator, ns
from tests.conftest import drive


def make_two_bus_system(sim, upstream_protocol="blocking"):
    up = Bus("up", sim=sim, clock_freq_hz=100e6, protocol=upstream_protocol)
    down = Bus("down", sim=sim, clock_freq_hz=100e6)
    near = Memory("near", sim=sim, base=0x0000, size_words=64)
    far = Memory("far", sim=sim, base=0x8000, size_words=64)
    up.register_slave(near)
    down.register_slave(far)
    bridge = BusBridge("bridge", sim=sim, low=0x8000, high=0x8000 + 64 * 4 - 1)
    up.register_slave(bridge)
    bridge.dn_port.bind(down)
    return up, down, near, far, bridge


class TestForwarding:
    def test_write_read_through_bridge(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)

        def body():
            yield from up.write(0x8010, [7, 8], master="cpu")
            data = yield from up.read(0x8010, 2, master="cpu")
            return data

        box = drive(sim, body)
        sim.run()
        assert box.value == [7, 8]
        assert far.peek(0x8010, 2) == [7, 8]
        assert bridge.forwarded_reads == 2
        assert bridge.forwarded_writes == 2

    def test_local_traffic_does_not_cross(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)

        def body():
            yield from up.write(0x0000, 1, master="cpu")

        sim.spawn("p", body)
        sim.run()
        assert down.monitor.transaction_count == 0
        assert bridge.forwarded_writes == 0

    def test_downstream_transactions_tagged_and_attributed(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)

        def body():
            yield from up.read(0x8000, 4, master="cpu")

        sim.spawn("p", body)
        sim.run()
        txns = down.monitor.transactions
        assert len(txns) == 1
        assert txns[0].master == "bridge"
        assert txns[0].has_tag("bridged")

    def test_bridge_adds_latency(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)
        times = {}

        def body():
            t0 = sim.now
            yield from up.read(0x0000, 1, master="cpu")  # local
            times["local"] = (sim.now - t0).to_ns()
            t0 = sim.now
            yield from up.read(0x8000, 1, master="cpu")  # bridged
            times["bridged"] = (sim.now - t0).to_ns()

        sim.spawn("p", body)
        sim.run()
        assert times["bridged"] > times["local"]

    def test_access_outside_window_rejected(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)

        def body():
            # Burst starting inside but running past the window end.
            yield from up.read(0x8000 + 63 * 4, 2, master="cpu")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="outside the bridged window"):
            sim.run()

    def test_range_validation(self, sim):
        with pytest.raises(ValueError):
            BusBridge("b", sim=sim, low=0x100, high=0x0)


class TestContention:
    def test_bridge_competes_on_downstream_bus(self, sim):
        up, down, near, far, bridge = make_two_bus_system(sim)
        done = {}

        def cpu_body():
            yield from up.read(0x8000, 16, master="cpu")
            done["cpu"] = sim.now.to_ns()

        def local_master():
            yield ns(5)
            yield from down.read(0x8000, 16, master="local")
            done["local"] = sim.now.to_ns()

        sim.spawn("cpu", cpu_body)
        sim.spawn("local", local_master)
        sim.run()
        assert set(done) == {"cpu", "local"}
        # Both used the downstream bus; arbitration happened.
        assert down.arbiter.grant_count == 2
