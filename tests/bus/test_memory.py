"""Memory models: latency, bounds, sparse backing, config regions."""

import pytest

from repro.bus import ConfigMemory, Memory
from repro.kernel import SimulationError, ns
from tests.conftest import drive


class TestMemory:
    def test_address_range(self, sim):
        mem = Memory("m", sim=sim, base=0x100, size_words=16, word_bytes=4)
        assert mem.get_low_add() == 0x100
        assert mem.get_high_add() == 0x100 + 16 * 4 - 1

    def test_read_latency_model(self, sim):
        mem = Memory(
            "m", sim=sim, base=0, size_words=64,
            latency_cycles=3, cycles_per_word=2, clock_freq_hz=100e6,
        )

        def body():
            data = yield from mem.read(0, 4)
            return (data, sim.now.to_ns())

        box = drive(sim, body)
        sim.run()
        # 3 + (4-1)*2 = 9 cycles at 10 ns.
        assert box.value[1] == 90.0

    def test_write_read_roundtrip(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=64)

        def body():
            yield from mem.write(0x10, [5, 6])
            data = yield from mem.read(0x10, 2)
            return data

        box = drive(sim, body)
        sim.run()
        assert box.value == [5, 6]

    def test_uninitialized_reads_fill(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=8, fill=0xDEAD)
        assert mem.peek(0, 2) == [0xDEAD, 0xDEAD]

    def test_unaligned_access_rejected(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=8)
        with pytest.raises(SimulationError, match="unaligned"):
            mem.peek(2)

    def test_out_of_range_rejected(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=8)
        with pytest.raises(SimulationError, match="outside"):
            mem.peek(8 * 4)
        with pytest.raises(SimulationError, match="outside"):
            mem.poke(7 * 4, [1, 2])  # crosses the end

    def test_poke_peek_do_not_advance_time(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=8)
        mem.poke(0, [1, 2, 3])
        assert mem.peek(0, 3) == [1, 2, 3]
        assert sim.now.to_ns() == 0.0

    def test_word_counters(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=64)

        def body():
            yield from mem.write(0, [1, 2, 3])
            yield from mem.read(0, 2)

        sim.spawn("p", body)
        sim.run()
        assert mem.write_word_count == 3
        assert mem.read_word_count == 2

    def test_invalid_size(self, sim):
        with pytest.raises(ValueError):
            Memory("m", sim=sim, base=0, size_words=0)

    def test_sparse_backing_stays_small(self, sim):
        mem = Memory("m", sim=sim, base=0, size_words=1 << 24)
        mem.poke(0, [1])
        assert len(mem._store) == 1


class TestConfigMemory:
    def test_region_registration_and_lookup(self, sim):
        mem = ConfigMemory("cfg", sim=sim, base=0x1000, size_words=1024)
        mem.register_context_region("fir", 0x1000, 256)
        mem.register_context_region("fft", 0x1100, 512)
        assert mem.region_of("fir") == (0x1000, 256)
        assert mem.context_for_address(0x1000) == "fir"
        assert mem.context_for_address(0x1100 + 511) == "fft"
        assert mem.context_for_address(0x1100 + 512) is None

    def test_region_outside_memory_rejected(self, sim):
        mem = ConfigMemory("cfg", sim=sim, base=0, size_words=16)
        with pytest.raises(SimulationError, match="outside"):
            mem.register_context_region("big", 0, 1 << 20)

    def test_unknown_region(self, sim):
        mem = ConfigMemory("cfg", sim=sim, base=0, size_words=16)
        with pytest.raises(KeyError):
            mem.region_of("nope")
