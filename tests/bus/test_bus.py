"""The shared bus: decode, timing, protocols, contention, monitor hookup."""

import pytest

from repro.bus import Bus, Memory
from repro.bus.interfaces import BusSlaveIf
from repro.kernel import ProcessError, SimulationError, Simulator, ns, us
from tests.conftest import drive


def make_system(sim, *, protocol="blocking", mem_latency=2, arbitration="fifo"):
    bus = Bus(
        "bus",
        sim=sim,
        clock_freq_hz=100e6,
        protocol=protocol,
        arbitration=arbitration,
    )
    mem = Memory(
        "mem",
        sim=sim,
        base=0x1000,
        size_words=256,
        latency_cycles=mem_latency,
        clock_freq_hz=100e6,
    )
    bus.register_slave(mem)
    return bus, mem


class TestDecode:
    def test_decode_hits_registered_slave(self, sim):
        bus, mem = make_system(sim)
        assert bus.decode(0x1000) is mem
        assert bus.decode(0x1000 + 255 * 4) is mem

    def test_decode_miss_raises(self, sim):
        bus, _ = make_system(sim)
        with pytest.raises(SimulationError, match="no slave decodes"):
            bus.decode(0x9000)

    def test_overlapping_slaves_rejected(self, sim):
        bus, _ = make_system(sim)
        overlap = Memory("m2", sim=sim, base=0x1100, size_words=16)
        with pytest.raises(SimulationError, match="overlaps"):
            bus.register_slave(overlap)

    def test_non_slave_rejected(self, sim):
        bus, _ = make_system(sim)
        with pytest.raises(SimulationError, match="BusSlaveIf"):
            bus.register_slave(object())  # type: ignore[arg-type]

    def test_unregister_slave(self, sim):
        bus, mem = make_system(sim)
        bus.unregister_slave(mem)
        assert bus.slaves == []


class TestTiming:
    def test_blocking_read_latency(self, sim):
        bus, _ = make_system(sim, mem_latency=2)

        def body():
            data = yield from bus.read(0x1000, 4, master="cpu")
            return (data, sim.now.to_ns())

        box = drive(sim, body)
        sim.run()
        data, t = box.value
        # addr phase (1) + memory (2 + 3) + data beats (4) = 10 cycles @ 10ns
        assert t == 100.0
        assert data == [0, 0, 0, 0]

    def test_write_then_read_roundtrip(self, sim):
        bus, mem = make_system(sim)

        def body():
            yield from bus.write(0x1010, [7, 8, 9], master="cpu")
            data = yield from bus.read(0x1010, 3, master="cpu")
            return data

        box = drive(sim, body)
        sim.run()
        assert box.value == [7, 8, 9]
        assert mem.peek(0x1010, 3) == [7, 8, 9]

    def test_single_word_write_scalar(self, sim):
        bus, mem = make_system(sim)

        def body():
            ok = yield from bus.write(0x1000, 42, master="cpu")
            return ok

        box = drive(sim, body)
        sim.run()
        assert box.value is True
        assert mem.peek(0x1000) == [42]

    def test_transfer_time_helper(self, sim):
        bus, _ = make_system(sim)
        assert bus.transfer_time(4) == ns(50)  # (1 + 4) cycles @ 10 ns

    def test_words_for_bytes(self, sim):
        bus, _ = make_system(sim)
        assert bus.words_for_bytes(1) == 1
        assert bus.words_for_bytes(4) == 1
        assert bus.words_for_bytes(5) == 2

    def test_zero_burst_rejected(self, sim):
        bus, _ = make_system(sim)

        def body():
            yield from bus.read(0x1000, 0, master="cpu")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="positive"):
            sim.run()


class TestContention:
    def test_second_master_waits(self, sim):
        bus, _ = make_system(sim)
        times = {}

        def master(label, start_delay):
            def body():
                yield ns(start_delay)
                yield from bus.read(0x1000, 8, master=label)
                times[label] = sim.now.to_ns()

            return body

        sim.spawn("m1", master("m1", 0))
        sim.spawn("m2", master("m2", 1))
        sim.run()
        # m1: 1 addr + 2+7 mem + 8 data = 18 cycles -> 180ns; m2 starts after.
        assert times["m1"] == 180.0
        assert times["m2"] == 360.0
        assert bus.monitor.mean_arbitration_wait("m2") > ns(0)

    def test_priority_master_jumps_queue(self, sim):
        bus, _ = make_system(sim, arbitration="priority")
        bus.set_master_priority("urgent", 0)
        bus.set_master_priority("bulk", 9)
        order = []

        def master(label, start_delay):
            def body():
                yield ns(start_delay)
                yield from bus.read(0x1000, 4, master=label)
                order.append(label)

            return body

        sim.spawn("holder", master("holder", 0))
        sim.spawn("bulk", master("bulk", 1))
        sim.spawn("urgent", master("urgent", 2))
        sim.run()
        assert order == ["holder", "urgent", "bulk"]


class TestSplitProtocol:
    def test_split_releases_bus_during_slave_wait(self, sim):
        bus, _ = make_system(sim, protocol="split", mem_latency=50)
        times = {}

        def master(label, start_delay, addr):
            def body():
                yield ns(start_delay)
                yield from bus.read(addr, 1, master=label)
                times[label] = sim.now.to_ns()

            return body

        sim.spawn("m1", master("m1", 0, 0x1000))
        sim.spawn("m2", master("m2", 1, 0x1040))
        sim.run()
        # Blocking protocol would serialize: each ~520ns -> m2 past 1000ns.
        # Split overlaps the two memory waits.
        assert times["m2"] < 700.0

    def test_split_results_still_correct(self, sim):
        bus, mem = make_system(sim, protocol="split")
        mem.poke(0x1000, [11, 22])

        def body():
            data = yield from bus.read(0x1000, 2, master="cpu")
            return data

        box = drive(sim, body)
        sim.run()
        assert box.value == [11, 22]

    def test_unknown_protocol_rejected(self, sim):
        with pytest.raises(ValueError, match="unknown bus protocol"):
            Bus("b", sim=sim, protocol="quantum")

    def test_invalid_width_rejected(self, sim):
        with pytest.raises(ValueError, match="multiple of 8"):
            Bus("b", sim=sim, data_width_bits=12)


class TestMidArbitrationReconfiguration:
    """The DRCF transformation may swap the slave map while a master waits
    out arbitration: the transfer must target the map current at *grant*
    time, not the one seen at issue time."""

    def test_queued_master_hits_slave_registered_after_issue(self, sim):
        bus, mem1 = make_system(sim, mem_latency=50)
        mem2 = Memory(
            "mem2", sim=sim, base=0x1000, size_words=256,
            latency_cycles=2, clock_freq_hz=100e6,
        )
        mem2.poke(0x1000, 0xBEEF)

        def m1():
            # Holds the bus well past the swap (50-cycle memory latency).
            yield from bus.write(0x1000, 99, master="m1")

        def m2():
            yield ns(1)  # issue while m1 owns the bus; decode sees mem1
            data = yield from bus.read(0x1000, 1, master="m2")
            return data

        def reconfigure():
            yield ns(100)  # mid-arbitration: m1 busy, m2 queued
            assert bus.arbiter.waiters == ["m2"]
            bus.unregister_slave(mem1)
            bus.register_slave(mem2)

        sim.spawn("m1", m1)
        box = drive(sim, m2, name="m2")
        sim.spawn("cfg", reconfigure)
        sim.run()
        # m2 re-decoded at grant time and read the *new* slave.
        assert box.value == [0xBEEF]
        assert bus.monitor.transactions[-1].slave == "mem2"
        # m1 resolved its slave at its own grant time: the in-flight write
        # landed in the old memory even though it was swapped out mid-burst.
        assert mem1.peek(0x1000) == [99]
        assert mem2.peek(0x1000) == [0xBEEF]

    def test_decode_error_surfaces_before_arbitration(self, sim):
        bus, _ = make_system(sim)

        def holder():
            yield from bus.read(0x1000, 8, master="holder")

        def stray():
            yield ns(1)
            yield from bus.read(0x9000, 1, master="stray")

        sim.spawn("h", holder)
        sim.spawn("s", stray)
        with pytest.raises(ProcessError, match="no slave decodes"):
            sim.run()
        # The bad request never reached the arbiter queue.
        assert bus.arbiter.contention_count == 0


class _FaultySlave(BusSlaveIf):
    """A slave whose data phase dies partway through."""

    def __init__(self, base=0x2000, size=64 * 4):
        self.base = base
        self.size = size

    def get_low_add(self):
        return self.base

    def get_high_add(self):
        return self.base + self.size - 1

    def read(self, addr, count=1):
        yield ns(30)
        raise RuntimeError("target abort")

    def write(self, addr, data):
        yield ns(30)
        raise RuntimeError("target abort")


class TestErrorTransactions:
    def test_slave_error_recorded_with_error_status(self, sim):
        bus, _ = make_system(sim)
        bus.register_slave(_FaultySlave())

        def body():
            yield from bus.read(0x2000, 1, master="cpu")

        sim.spawn("p", body)
        with pytest.raises(ProcessError, match="target abort"):
            sim.run()
        monitor = bus.monitor
        assert monitor.transaction_count == 1
        txn = monitor.transactions[0]
        assert txn.status == "error"
        assert not txn.ok
        assert txn.completed_at.to_ns() == 40.0  # addr phase + 30ns of slave
        assert monitor.error_count == 1
        # The failed master must not leave the bus locked.
        assert bus.arbiter.owner is None

    def test_successful_transactions_report_ok(self, sim):
        bus, _ = make_system(sim)

        def body():
            yield from bus.write(0x1000, 1, master="cpu")

        sim.spawn("p", body)
        sim.run()
        txn = bus.monitor.transactions[0]
        assert txn.status == "ok" and txn.ok
        assert bus.monitor.error_count == 0

    def test_error_transactions_count_in_summary_schema(self, sim):
        """summary() keys are a stable report schema; errored transfers feed
        the existing aggregates rather than changing the shape."""
        bus, _ = make_system(sim)
        bus.register_slave(_FaultySlave())

        def good():
            yield from bus.write(0x1000, 1, master="cpu")

        def bad():
            yield ns(100)
            yield from bus.read(0x2000, 1, master="cpu")

        sim.spawn("g", good)
        sim.spawn("b", bad)
        with pytest.raises(ProcessError):
            sim.run()
        summary = bus.monitor.summary()
        assert set(summary) == {
            "transactions",
            "total_words",
            "config_words",
            "data_words",
            "busy_time_ns",
            "mean_arbitration_wait_ns",
            "words_by_master",
        }
        assert summary["transactions"] == 2

    def test_killed_master_records_nothing(self, sim):
        """A master killed mid-transfer completed nothing: no transaction,
        and the arbiter is released for the next master."""
        bus, _ = make_system(sim, mem_latency=50)

        def victim():
            yield from bus.read(0x1000, 1, master="victim")

        proc = sim.spawn("victim", victim)

        def killer():
            yield ns(100)  # mid-burst
            proc.kill()

        sim.spawn("killer", killer)
        sim.run()
        assert bus.monitor.transaction_count == 0
        assert bus.arbiter.owner is None


class TestMonitorIntegration:
    def test_transactions_recorded_with_tags(self, sim):
        bus, _ = make_system(sim)

        def body():
            yield from bus.read(0x1000, 4, master="cpu", tags=["config"])
            yield from bus.write(0x1000, [1], master="cpu")

        sim.spawn("p", body)
        sim.run()
        monitor = bus.monitor
        assert monitor.transaction_count == 2
        assert monitor.words_by_tag("config") == 4
        assert monitor.words_without_tag("config") == 1
        assert monitor.words_by_master() == {"cpu": 5}
        assert monitor.transactions[0].kind == "read"
        assert monitor.transactions[0].slave == "mem"
