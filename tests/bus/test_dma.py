"""DMA controller: copies, bursts, completion events, fetch-only mode."""

import pytest

from repro.bus import Bus, DmaController, DmaDescriptor, Memory
from repro.kernel import Simulator, ns


def make_system(sim):
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    src = Memory("src", sim=sim, base=0x0000, size_words=256)
    dst = Memory("dst", sim=sim, base=0x4000, size_words=256)
    bus.register_slave(src)
    bus.register_slave(dst)
    dma = DmaController("dma", sim=sim)
    dma.mst_port.bind(bus)
    return bus, src, dst, dma


class TestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            DmaDescriptor(src=0, dst=0x100, words=0)
        with pytest.raises(ValueError):
            DmaDescriptor(src=0, dst=0x100, words=4, burst=0)


class TestCopies:
    def test_memory_to_memory_copy(self, sim):
        bus, src, dst, dma = make_system(sim)
        src.poke(0, list(range(32)))
        done_times = []
        done = dma.submit(DmaDescriptor(src=0, dst=0x4000, words=32, burst=8))

        def watcher():
            yield done
            done_times.append(sim.now.to_ns())

        sim.spawn("w", watcher)
        sim.run()
        assert dst.peek(0x4000, 32) == list(range(32))
        assert done_times and done_times[0] > 0
        assert dma.jobs_completed == 1
        assert dma.words_moved == 32

    def test_fetch_only_descriptor(self, sim):
        bus, src, dst, dma = make_system(sim)
        dma.submit(DmaDescriptor(src=0, dst=None, words=16, tags=["config"]))
        sim.run()
        assert dma.words_moved == 16
        assert bus.monitor.words_by_tag("config") == 16
        # Nothing written anywhere.
        assert all(t.kind == "read" for t in bus.monitor.transactions)

    def test_burst_chopping_allows_interleaving(self, sim):
        bus, src, dst, dma = make_system(sim)
        dma.submit(DmaDescriptor(src=0, dst=0x4000, words=64, burst=4))
        cpu_done = []

        def cpu():
            yield ns(5)
            yield from bus.read(0x0000, 1, master="cpu")
            cpu_done.append(sim.now.to_ns())

        sim.spawn("cpu", cpu)
        sim.run()
        dma_end = max(t.completed_at for t in bus.monitor.transactions).to_ns()
        # The CPU read slotted between DMA bursts, well before the DMA end.
        assert cpu_done[0] < dma_end

    def test_multiple_jobs_fifo(self, sim):
        bus, src, dst, dma = make_system(sim)
        src.poke(0, [1, 2, 3, 4])
        dma.submit(DmaDescriptor(src=0, dst=0x4000, words=2))
        dma.submit(DmaDescriptor(src=8, dst=0x4008, words=2))
        assert dma.pending_jobs == 2
        sim.run()
        assert dma.jobs_completed == 2
        assert dst.peek(0x4000, 4) == [1, 2, 3, 4]

    def test_completed_at_stamped(self, sim):
        bus, src, dst, dma = make_system(sim)
        descriptor = DmaDescriptor(src=0, dst=0x4000, words=4)
        dma.submit(descriptor)
        sim.run()
        assert descriptor.completed_at is not None
        assert descriptor.completed_at.to_ns() > 0
