"""Interrupt controller + interrupt-driven accelerator completion."""

import pytest

from repro.apps import JobRunner, JobSpec, golden_outputs, make_baseline_netlist
from repro.apps.driver import run_accelerator_job
from repro.bus import (
    Bus,
    InterruptController,
    Memory,
    REG_ACK,
    REG_MASK,
    REG_PENDING,
)
from repro.kernel import SimulationError, Simulator, ns, us
from tests.conftest import drive


def make_ctrl(sim, n_lines=8):
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    ctrl = InterruptController("irq", sim=sim, base=0x9000, n_lines=n_lines)
    bus.register_slave(ctrl)
    return bus, ctrl


class TestController:
    def test_source_registration(self, sim):
        _, ctrl = make_ctrl(sim)
        assert ctrl.register_source("a") == 0
        assert ctrl.register_source("b") == 1
        assert ctrl.register_source("a") == 0  # idempotent
        assert ctrl.register_source("c", line=5) == 5

    def test_out_of_lines(self, sim):
        _, ctrl = make_ctrl(sim, n_lines=1)
        ctrl.register_source("a")
        with pytest.raises(SimulationError, match="out of interrupt lines"):
            ctrl.register_source("b")

    def test_unknown_source(self, sim):
        _, ctrl = make_ctrl(sim)
        with pytest.raises(SimulationError, match="unknown interrupt source"):
            ctrl.raise_irq("ghost")

    def test_raise_sets_pending_and_fires_event(self, sim):
        _, ctrl = make_ctrl(sim)
        ctrl.register_source("acc")
        fired = []

        def waiter():
            yield ctrl.line_event("acc")
            fired.append(sim.now.to_ns())

        sim.spawn("w", waiter)

        def raiser():
            yield ns(25)
            ctrl.raise_irq("acc")

        sim.spawn("r", raiser)
        sim.run()
        assert fired == [25.0]
        assert ctrl.is_pending("acc")
        ctrl.acknowledge("acc")
        assert not ctrl.is_pending("acc")

    def test_masked_line_does_not_fire(self, sim):
        bus, ctrl = make_ctrl(sim)
        ctrl.register_source("acc", line=0)
        fired = []

        def body():
            yield from bus.write(0x9000 + REG_MASK, 0x0, master="cpu")  # mask all
            ctrl.raise_irq("acc")
            pending = yield from bus.read(0x9000 + REG_PENDING, 1, master="cpu")
            fired.append(pending[0])

        sim.spawn("p", body)
        sim.run()
        # Raised but masked: visible-pending reads 0, no event delivered.
        assert fired == [0]
        assert ctrl.is_pending("acc")  # raw pending retained

    def test_ack_over_the_bus(self, sim):
        bus, ctrl = make_ctrl(sim)
        ctrl.register_source("acc", line=3)
        result = []

        def body():
            ctrl.raise_irq("acc")
            yield from bus.write(0x9000 + REG_ACK, 1 << 3, master="cpu")
            pending = yield from bus.read(0x9000 + REG_PENDING, 1, master="cpu")
            result.append(pending[0])

        sim.spawn("p", body)
        sim.run()
        assert result == [0]

    def test_register_file_bounds(self, sim):
        bus, ctrl = make_ctrl(sim)
        # The bus itself rejects addresses past the decoded range...
        def over_range():
            yield from bus.read(0x9000 + 0x0C, 1, master="cpu")

        sim.spawn("p", over_range)
        with pytest.raises(Exception, match="no slave decodes"):
            sim.run()
        # ...and a burst read spilling past ACK is rejected by the slave.
        sim2 = Simulator()
        _, ctrl2 = make_ctrl(sim2)

        def spill():
            yield from ctrl2.read(0x9000 + REG_ACK, 2)

        sim2.spawn("p", spill)
        with pytest.raises(Exception, match="read from"):
            sim2.run()

    def test_line_count_validation(self, sim):
        with pytest.raises(SimulationError):
            InterruptController("i", sim=sim, base=0, n_lines=0)


class TestInterruptDrivenDriver:
    def _system(self):
        netlist, info = make_baseline_netlist(("fir",))
        netlist.add("irq", InterruptController, slave_of="system_bus", base=0x3000_0000)
        sim = Simulator()
        design = netlist.elaborate(sim)
        design["fir"].connect_irq(design["irq"])
        return sim, design, info

    def test_irq_job_matches_polling_job(self):
        spec = JobSpec("fir", [10, 20, 30], param=1, coefs=[1 << 15])
        results = {}
        for mode in ("poll", "irq"):
            sim, design, info = self._system()
            out = {}

            def task(cpu, mode=mode, design=design):
                irq = (design["irq"], design["fir"].irq_source) if mode == "irq" else None
                out["data"] = yield from run_accelerator_job(
                    cpu,
                    info.accel_bases["fir"],
                    spec.inputs,
                    param=spec.param,
                    coefs=spec.coefs,
                    buffer_words=info.buffer_words,
                    irq=irq,
                )

            design["cpu"].run_task(task)
            sim.run()
            results[mode] = out["data"]
        assert results["poll"] == results["irq"] == golden_outputs(spec)

    def test_irq_mode_removes_poll_traffic(self):
        # A slow job: polling mode issues many STATUS reads, IRQ mode none.
        inputs = list(range(256))
        reads = {}
        for mode in ("poll", "irq"):
            sim, design, info = self._system()

            def task(cpu, mode=mode, design=design):
                irq = (design["irq"], design["fir"].irq_source) if mode == "irq" else None
                yield from run_accelerator_job(
                    cpu,
                    info.accel_bases["fir"],
                    inputs,
                    param=8,
                    coefs=[1000] * 8,
                    buffer_words=info.buffer_words,
                    irq=irq,
                )

            design["cpu"].run_task(task)
            sim.run()
            reads[mode] = design["cpu"].bus_reads
        # IRQ mode: only the output readback; polling adds STATUS reads.
        assert reads["irq"] < reads["poll"]

    def test_irq_no_race_when_completion_precedes_wait(self):
        # A zero-delay-ish job may raise the IRQ before the CPU reaches the
        # wait; the pending check must catch it.
        sim, design, info = self._system()
        done = {}

        def task(cpu):
            data = yield from run_accelerator_job(
                cpu,
                info.accel_bases["fir"],
                [1],
                param=1,
                coefs=[1 << 15],
                buffer_words=info.buffer_words,
                irq=(design["irq"], design["fir"].irq_source),
            )
            done["data"] = data

        design["cpu"].run_task(task)
        sim.run()
        assert done["data"] == [1]
