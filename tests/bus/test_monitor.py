"""Bus monitor aggregation."""

from repro.bus import BusMonitor, Transaction
from repro.kernel import ZERO_TIME, ns, us


def txn(kind="read", master="cpu", slave="mem", words=4, issued=0, granted=0, done=40, tags=()):
    return Transaction(
        kind=kind,
        master=master,
        slave=slave,
        addr=0x1000,
        words=words,
        issued_at=ns(issued),
        granted_at=ns(granted),
        completed_at=ns(done),
        tags=list(tags),
    )


class TestAggregation:
    def test_word_totals_and_tags(self):
        monitor = BusMonitor()
        monitor.record(txn(words=4))
        monitor.record(txn(words=8, tags=["config"]))
        assert monitor.total_words == 12
        assert monitor.words_by_tag("config") == 8
        assert monitor.words_without_tag("config") == 4
        assert monitor.transaction_count == 2

    def test_per_master_per_slave(self):
        monitor = BusMonitor()
        monitor.record(txn(master="cpu", words=2))
        monitor.record(txn(master="dma", slave="cfg", words=6))
        assert monitor.words_by_master() == {"cpu": 2, "dma": 6}
        assert monitor.words_by_slave() == {"mem": 2, "cfg": 6}

    def test_busy_time_and_utilization(self):
        monitor = BusMonitor()
        monitor.record(txn(granted=0, done=40))
        monitor.record(txn(granted=50, done=70))
        assert monitor.busy_time() == ns(60)
        assert abs(monitor.utilization(ns(120)) - 0.5) < 1e-9
        assert monitor.utilization(ZERO_TIME) == 0.0

    def test_arbitration_waits(self):
        monitor = BusMonitor()
        monitor.record(txn(issued=0, granted=10, done=20))
        monitor.record(txn(issued=0, granted=30, done=40, master="dma"))
        assert monitor.mean_arbitration_wait() == ns(20)
        assert monitor.mean_arbitration_wait("dma") == ns(30)
        assert monitor.max_arbitration_wait() == ns(30)
        assert monitor.mean_arbitration_wait("ghost") == ZERO_TIME

    def test_transaction_properties(self):
        t = txn(issued=5, granted=10, done=40)
        assert t.arbitration_wait == ns(5)
        assert t.latency == ns(35)
        assert not t.has_tag("config")

    def test_listeners_called(self):
        monitor = BusMonitor()
        seen = []
        monitor.listeners.append(lambda t: seen.append(t.words))
        monitor.record(txn(words=3))
        assert seen == [3]

    def test_reset(self):
        monitor = BusMonitor()
        monitor.record(txn())
        monitor.reset()
        assert monitor.transaction_count == 0
        assert monitor.busy_time() == ZERO_TIME

    def test_summary_keys(self):
        monitor = BusMonitor()
        monitor.record(txn(tags=["config"]))
        summary = monitor.summary()
        for key in ("transactions", "total_words", "config_words", "data_words", "busy_time_ns"):
            assert key in summary
