"""Arbitration policies: FIFO, priority, round-robin, bookkeeping."""

import pytest

from repro.kernel import SimulationError, Simulator, ns
from repro.bus import Arbiter


def contender(sim, arbiter, label, order, priority=0, hold=10, rounds=1):
    def body():
        for _ in range(rounds):
            yield from arbiter.request(label, priority)
            order.append((label, sim.now.to_ns()))
            yield ns(hold)
            arbiter.release(label)

    return body


class TestFifo:
    def test_grant_order_is_request_order(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        order = []
        for label in ("x", "y", "z"):
            sim.spawn(label, contender(sim, arbiter, label, order))
        sim.run()
        assert [o[0] for o in order] == ["x", "y", "z"]
        assert [o[1] for o in order] == [0.0, 10.0, 20.0]

    def test_uncontended_grant_immediate(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        order = []
        sim.spawn("only", contender(sim, arbiter, "only", order))
        sim.run()
        assert order == [("only", 0.0)]
        assert arbiter.contention_count == 0
        assert arbiter.grant_count == 1


class TestPriority:
    def test_lower_number_wins(self, sim):
        arbiter = Arbiter(sim, "priority", "a")
        order = []
        # "low" requests first but has worse priority than "high".
        sim.spawn("holder", contender(sim, arbiter, "holder", order, priority=0))
        sim.spawn("low", contender(sim, arbiter, "low", order, priority=5))
        sim.spawn("high", contender(sim, arbiter, "high", order, priority=1))
        sim.run()
        assert [o[0] for o in order] == ["holder", "high", "low"]

    def test_equal_priority_falls_back_to_order(self, sim):
        arbiter = Arbiter(sim, "priority", "a")
        order = []
        for label in ("a", "b", "c"):
            sim.spawn(label, contender(sim, arbiter, label, order, priority=3))
        sim.run()
        assert [o[0] for o in order] == ["a", "b", "c"]


class TestRoundRobin:
    def test_rotation(self, sim):
        arbiter = Arbiter(sim, "round_robin", "a")
        order = []
        for label in ("a", "b", "c"):
            sim.spawn(label, contender(sim, arbiter, label, order, hold=5, rounds=3))
        sim.run()
        granted = [o[0] for o in order]
        # Each requester appears 3 times and no requester gets two grants
        # while others wait.
        assert sorted(granted) == ["a"] * 3 + ["b"] * 3 + ["c"] * 3
        for i in range(len(granted) - 2):
            assert len({granted[i], granted[i + 1], granted[i + 2]}) == 3


class TestRoundRobinWraparound:
    def test_pointer_wraps_past_end_of_rotation_order(self, sim):
        """The rotation pointer must wrap from the last label back to the
        first: after "c" (last in rotation order) wins, the next grant with
        "a" and "b" queued must go to "a", not scan off the end."""
        arbiter = Arbiter(sim, "round_robin", "a")
        order = []
        # Register rotation order a, b, c via first requests; four rounds
        # drive the pointer across the a->b->c->a seam repeatedly.
        for label in ("a", "b", "c"):
            sim.spawn(label, contender(sim, arbiter, label, order, hold=5, rounds=4))
        sim.run()
        granted = [o[0] for o in order]
        assert granted[:3] == ["a", "b", "c"]
        # Every wrap point hands back to "a".
        assert granted == ["a", "b", "c"] * 4

    def test_sole_waiter_grant_advances_pointer(self, sim):
        """Granting a lone waiter must still move the rotation pointer to
        that winner, or the next contended round would double-grant it."""
        arbiter = Arbiter(sim, "round_robin", "a")
        order = []

        def staggered(label, start, rounds):
            def body():
                yield ns(start)
                for _ in range(rounds):
                    yield from arbiter.request(label)
                    order.append((label, sim.now.to_ns()))
                    yield ns(10)
                    arbiter.release(label)

            return body

        # Phase 1: "a" and "b" alternate with single-waiter queues.
        sim.spawn("a", staggered("a", 0, 2))
        sim.spawn("b", staggered("b", 1, 2))
        # Phase 2: both re-contend together with "c"; rotation must resume
        # from wherever the lone-waiter grants left the pointer.
        sim.spawn("a2", staggered("a", 50, 2))
        sim.spawn("b2", staggered("b", 50, 2))
        sim.spawn("c2", staggered("c", 50, 2))
        sim.run()
        granted = [o[0] for o in order]
        tail = granted[4:]
        assert sorted(tail) == ["a", "a", "b", "b", "c", "c"]
        # No requester gets two grants in a row while the others wait.
        for i in range(len(tail) - 1):
            assert tail[i] != tail[i + 1]

    def test_release_while_queued_grants_in_same_instant(self, sim):
        """Ownership transfers inside release(): the winner's grant time is
        the release instant, with no dead cycle in between."""
        arbiter = Arbiter(sim, "fifo", "a")
        order = []
        sim.spawn("x", contender(sim, arbiter, "x", order, hold=10))
        sim.spawn("y", contender(sim, arbiter, "y", order, hold=10))
        sim.run()
        assert order == [("x", 0.0), ("y", 10.0)]
        assert arbiter.contention_count == 1
        assert arbiter.grant_count == 2


class TestTryAcquire:
    def test_uncontended_takes_ownership(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        assert arbiter.try_acquire("m")
        assert arbiter.owner == "m"
        assert arbiter.grant_count == 1
        assert arbiter.contention_count == 0

    def test_fails_while_owned(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        arbiter.try_acquire("m")
        assert not arbiter.try_acquire("other")
        assert arbiter.owner == "m"
        arbiter.release("m")
        assert arbiter.try_acquire("other")

    def test_matches_request_bookkeeping(self, sim):
        """try_acquire and the uncontended arm of request() are equivalent:
        same owner, counters and rotation-order note."""
        a1 = Arbiter(sim, "round_robin", "a1")
        a1.try_acquire("m")
        a2 = Arbiter(sim, "round_robin", "a2")

        def body():
            yield from a2.request("m")

        sim.spawn("p", body)
        sim.run()
        assert (a1.owner, a1.grant_count, a1._rr_order) == (
            a2.owner, a2.grant_count, a2._rr_order
        )


class TestErrors:
    def test_unknown_policy(self, sim):
        with pytest.raises(ValueError, match="unknown arbitration policy"):
            Arbiter(sim, "lottery", "a")

    def test_release_while_idle(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        with pytest.raises(SimulationError, match="released while idle"):
            arbiter.release()

    def test_release_by_non_owner(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")

        def body():
            yield from arbiter.request("owner")
            arbiter.release("impostor")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="owner"):
            sim.run()

    def test_waiters_listing(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")

        def holder():
            yield from arbiter.request("holder")
            yield ns(100)
            arbiter.release("holder")

        def waiter():
            yield ns(1)
            yield from arbiter.request("waiter")
            arbiter.release("waiter")

        sim.spawn("h", holder)
        sim.spawn("w", waiter)
        sim.run(until=ns(50))
        assert arbiter.owner == "holder"
        assert arbiter.waiters == ["waiter"]
