"""Arbitration policies: FIFO, priority, round-robin, bookkeeping."""

import pytest

from repro.kernel import SimulationError, Simulator, ns
from repro.bus import Arbiter


def contender(sim, arbiter, label, order, priority=0, hold=10, rounds=1):
    def body():
        for _ in range(rounds):
            yield from arbiter.request(label, priority)
            order.append((label, sim.now.to_ns()))
            yield ns(hold)
            arbiter.release(label)

    return body


class TestFifo:
    def test_grant_order_is_request_order(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        order = []
        for label in ("x", "y", "z"):
            sim.spawn(label, contender(sim, arbiter, label, order))
        sim.run()
        assert [o[0] for o in order] == ["x", "y", "z"]
        assert [o[1] for o in order] == [0.0, 10.0, 20.0]

    def test_uncontended_grant_immediate(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        order = []
        sim.spawn("only", contender(sim, arbiter, "only", order))
        sim.run()
        assert order == [("only", 0.0)]
        assert arbiter.contention_count == 0
        assert arbiter.grant_count == 1


class TestPriority:
    def test_lower_number_wins(self, sim):
        arbiter = Arbiter(sim, "priority", "a")
        order = []
        # "low" requests first but has worse priority than "high".
        sim.spawn("holder", contender(sim, arbiter, "holder", order, priority=0))
        sim.spawn("low", contender(sim, arbiter, "low", order, priority=5))
        sim.spawn("high", contender(sim, arbiter, "high", order, priority=1))
        sim.run()
        assert [o[0] for o in order] == ["holder", "high", "low"]

    def test_equal_priority_falls_back_to_order(self, sim):
        arbiter = Arbiter(sim, "priority", "a")
        order = []
        for label in ("a", "b", "c"):
            sim.spawn(label, contender(sim, arbiter, label, order, priority=3))
        sim.run()
        assert [o[0] for o in order] == ["a", "b", "c"]


class TestRoundRobin:
    def test_rotation(self, sim):
        arbiter = Arbiter(sim, "round_robin", "a")
        order = []
        for label in ("a", "b", "c"):
            sim.spawn(label, contender(sim, arbiter, label, order, hold=5, rounds=3))
        sim.run()
        granted = [o[0] for o in order]
        # Each requester appears 3 times and no requester gets two grants
        # while others wait.
        assert sorted(granted) == ["a"] * 3 + ["b"] * 3 + ["c"] * 3
        for i in range(len(granted) - 2):
            assert len({granted[i], granted[i + 1], granted[i + 2]}) == 3


class TestErrors:
    def test_unknown_policy(self, sim):
        with pytest.raises(ValueError, match="unknown arbitration policy"):
            Arbiter(sim, "lottery", "a")

    def test_release_while_idle(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")
        with pytest.raises(SimulationError, match="released while idle"):
            arbiter.release()

    def test_release_by_non_owner(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")

        def body():
            yield from arbiter.request("owner")
            arbiter.release("impostor")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="owner"):
            sim.run()

    def test_waiters_listing(self, sim):
        arbiter = Arbiter(sim, "fifo", "a")

        def holder():
            yield from arbiter.request("holder")
            yield ns(100)
            arbiter.release("holder")

        def waiter():
            yield ns(1)
            yield from arbiter.request("waiter")
            arbiter.release("waiter")

        sim.spawn("h", holder)
        sim.spawn("w", waiter)
        sim.run(until=ns(50))
        assert arbiter.owner == "holder"
        assert arbiter.waiters == ["waiter"]
