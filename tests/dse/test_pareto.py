"""Pareto and crossover analysis."""

import pytest

from repro.dse import DsePoint, crossover_point, dominates, pareto_front


def point(**kv):
    params = {k[2:]: v for k, v in kv.items() if k.startswith("p_")}
    metrics = {k[2:]: v for k, v in kv.items() if k.startswith("m_")}
    return DsePoint(params=params, metrics=metrics)


class TestDominance:
    def test_strict_domination(self):
        a = point(m_lat=1.0, m_area=1.0)
        b = point(m_lat=2.0, m_area=2.0)
        objectives = [("lat", "min"), ("area", "min")]
        assert dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_equal_points_do_not_dominate(self):
        a = point(m_lat=1.0, m_area=1.0)
        b = point(m_lat=1.0, m_area=1.0)
        assert not dominates(a, b, [("lat", "min"), ("area", "min")])

    def test_max_direction(self):
        a = point(m_lat=1.0, m_flex=1.0)
        b = point(m_lat=1.0, m_flex=0.0)
        assert dominates(a, b, [("lat", "min"), ("flex", "max")])


class TestParetoFront:
    def test_trade_off_points_survive(self):
        points = [
            point(m_lat=1.0, m_area=10.0),
            point(m_lat=10.0, m_area=1.0),
            point(m_lat=5.0, m_area=5.0),
            point(m_lat=11.0, m_area=11.0),  # dominated by all
        ]
        front = pareto_front(points, [("lat", "min"), ("area", "min")])
        assert points[3] not in front
        assert len(front) == 3

    def test_failed_points_excluded(self):
        ok = point(m_lat=1.0)
        bad = DsePoint(params={}, metrics={}, error="x")
        assert pareto_front([ok, bad], [("lat", "min")]) == [ok]

    def test_invalid_direction(self):
        with pytest.raises(ValueError, match="direction"):
            pareto_front([point(m_lat=1.0)], [("lat", "down")])

    def test_single_objective_front_is_minimum(self):
        points = [point(m_lat=v) for v in (5.0, 1.0, 3.0)]
        front = pareto_front(points, [("lat", "min")])
        assert [p.metrics["lat"] for p in front] == [1.0]


class TestCrossover:
    def _sweep(self):
        points = []
        for tech in ("a", "b"):
            for x in (1, 2, 3, 4):
                # Series a beats b until x=3.
                value = x if tech == "a" else 2.5
                points.append(
                    DsePoint(params={"tech": tech, "x": x}, metrics={"lat": value})
                )
        return points

    def test_crossover_located(self):
        result = crossover_point(
            self._sweep(), axis="x", metric="lat",
            series_key="tech", series_a="a", series_b="b",
        )
        assert result["crossover"] == 3
        assert result["axis_values"] == [1, 2, 3, 4]
        assert result["curve_a"][1] == 1

    def test_no_crossover(self):
        points = [
            DsePoint(params={"tech": t, "x": x}, metrics={"lat": 1.0 if t == "a" else 2.0})
            for t in ("a", "b")
            for x in (1, 2)
        ]
        result = crossover_point(points, "x", "lat", "tech", "a", "b")
        assert result["crossover"] is None
