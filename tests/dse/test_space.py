"""Parameter spaces."""

import pytest

from repro.dse import ParameterSpace


class TestParameterSpace:
    def test_cartesian_product_order(self):
        space = ParameterSpace().add_axis("a", [1, 2]).add_axis("b", ["x", "y"])
        points = list(space.points())
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_size_and_len(self):
        space = ParameterSpace().add_axis("a", [1, 2, 3]).add_axis("b", [True, False])
        assert space.size == 6
        assert len(space) == 6
        assert len(list(space)) == 6

    def test_single_axis(self):
        space = ParameterSpace().add_axis("only", ["v"])
        assert list(space) == [{"only": "v"}]

    def test_axis_names(self):
        space = ParameterSpace().add_axis("b", [1]).add_axis("a", [2])
        assert space.axis_names == ["b", "a"]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ParameterSpace().add_axis("a", [])

    def test_duplicate_axis_rejected(self):
        space = ParameterSpace().add_axis("a", [1])
        with pytest.raises(ValueError, match="duplicate"):
            space.add_axis("a", [2])


class TestSampling:
    def _space(self):
        return (
            ParameterSpace()
            .add_axis("a", [1, 2, 3, 4])
            .add_axis("b", ["x", "y", "z"])
        )

    def test_sample_is_deterministic_subset(self):
        space = self._space()
        sample1 = space.sample(5, seed=3)
        sample2 = space.sample(5, seed=3)
        assert sample1 == sample2
        assert len(sample1) == 5
        full = list(space.points())
        assert all(point in full for point in sample1)

    def test_sample_points_distinct(self):
        sample = self._space().sample(6, seed=9)
        assert len({tuple(sorted(p.items())) for p in sample}) == 6

    def test_oversample_returns_full_space(self):
        space = self._space()
        assert space.sample(100) == list(space.points())

    def test_different_seeds_differ(self):
        space = self._space()
        assert space.sample(5, seed=1) != space.sample(5, seed=2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            self._space().sample(0)
