"""The ADRIATIC flow (Figure 3) end to end."""

import pytest

from repro.dse import AdriaticFlow
from repro.tech import MORPHOSYS


@pytest.fixture(scope="module")
def flow_result():
    flow = AdriaticFlow(
        ("fir", "fft"),
        tech=MORPHOSYS,
        n_frames=1,
        designer_flags={"fft": {"spec_change_expected": True}},
    )
    return flow.run(back_annotate_scale=3.0)


class TestStages:
    def test_stage1_executable_specification(self, flow_result):
        assert len(flow_result.golden) == 2
        assert all(out for out in flow_result.golden.values())

    def test_stage3_partitioning_used_profiles(self, flow_result):
        names = {p.name for p in flow_result.profiles}
        assert names == {"fir", "fft"}
        assert all(0 <= p.utilization <= 1 for p in flow_result.profiles)
        assert set(flow_result.recommendation.candidates) == {"fir", "fft"}

    def test_stage4_transform_happened(self, flow_result):
        assert flow_result.transform is not None
        assert "drcf1" in flow_result.transform.netlist.component_names

    def test_stage5_both_architectures_verified(self, flow_result):
        assert flow_result.baseline_run.outputs_match_spec
        assert flow_result.mapped_run.outputs_match_spec
        assert flow_result.mapped_run.switches > 0
        assert flow_result.baseline_run.switches == 0
        assert flow_result.mapped_run.makespan_us > flow_result.baseline_run.makespan_us

    def test_stage6_back_annotation_increases_delay(self, flow_result):
        back = flow_result.back_annotated_run
        assert back is not None
        assert back.makespan_us >= flow_result.mapped_run.makespan_us
        assert back.outputs_match_spec

    def test_summary_rows(self, flow_result):
        rows = flow_result.summary_rows()
        assert [r["architecture"] for r in rows] == [
            "figure-1a baseline",
            "figure-1b mapped",
            "back-annotated",
        ]


class TestNoCandidateCase:
    def test_flow_without_candidates_skips_mapping(self):
        # A single block matches no rule -> no mapping stage.
        flow = AdriaticFlow(("viterbi",), tech=MORPHOSYS, n_frames=1)
        result = flow.run()
        assert result.recommendation.candidates == []
        assert result.transform is None
        assert result.mapped_run is None
        assert result.baseline_run.outputs_match_spec

    def test_unknown_accels_rejected(self):
        with pytest.raises(KeyError):
            AdriaticFlow(("gpu",), tech=MORPHOSYS)
