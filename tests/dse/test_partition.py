"""The Section 5.1 partitioning rules of thumb."""

import pytest

from repro.dse import BlockProfile, profiles_from_run, recommend_candidates


def profile(name, gates=10_000, utilization=0.1, concurrency=0.0, **flags):
    return BlockProfile(
        name=name, gates=gates, utilization=utilization, concurrency=concurrency, **flags
    )


class TestRule1SameSizedTimeMultiplexed:
    def test_group_of_similar_idle_blocks_recommended(self):
        rec = recommend_candidates(
            [profile("a", 10_000), profile("b", 12_000), profile("c", 9_000)]
        )
        assert set(rec.candidates) == {"a", "b", "c"}
        assert any("rule1" in r for r in rec.reason("a"))

    def test_single_block_not_rule1(self):
        rec = recommend_candidates([profile("solo")])
        assert rec.candidates == []
        assert "solo" in rec.rejected

    def test_size_mismatch_breaks_group(self):
        rec = recommend_candidates(
            [profile("small", gates=1_000), profile("huge", gates=100_000)]
        )
        assert rec.candidates == []

    def test_busy_block_excluded(self):
        rec = recommend_candidates(
            [
                profile("idle1", utilization=0.1),
                profile("idle2", utilization=0.1),
                profile("hot", utilization=0.9),
            ]
        )
        assert "hot" not in rec.candidates
        assert "utilization" in rec.rejected["hot"]

    def test_concurrent_block_excluded(self):
        rec = recommend_candidates(
            [
                profile("a"),
                profile("b"),
                profile("parallel", concurrency=0.8),
            ]
        )
        assert "parallel" not in rec.candidates
        assert "concurrently" in rec.rejected["parallel"]

    def test_largest_compatible_group_wins(self):
        # Three similar small blocks vs two similar big blocks.
        rec = recommend_candidates(
            [
                profile("s1", gates=1_000),
                profile("s2", gates=1_200),
                profile("s3", gates=900),
                profile("b1", gates=50_000),
                profile("b2", gates=60_000),
            ]
        )
        rule1 = {n for n in rec.candidates if any("rule1" in r for r in rec.reason(n))}
        assert rule1 == {"s1", "s2", "s3"}


class TestRules2And3Flags:
    def test_spec_change_flag(self):
        rec = recommend_candidates([profile("modem", spec_change_expected=True)])
        assert rec.candidates == ["modem"]
        assert any("rule2" in r for r in rec.reason("modem"))

    def test_next_generation_flag(self):
        rec = recommend_candidates([profile("codec", next_generation_planned=True)])
        assert any("rule3" in r for r in rec.reason("codec"))

    def test_flags_apply_even_to_busy_blocks(self):
        rec = recommend_candidates(
            [profile("hot", utilization=0.95, spec_change_expected=True)]
        )
        assert rec.candidates == ["hot"]


class TestProfilesFromRun:
    def test_utilization_computed(self):
        profiles = profiles_from_run(
            {"fir": (12_000, 500.0), "fft": (25_000, 250.0)}, window_ns=1000.0
        )
        by_name = {p.name: p for p in profiles}
        assert by_name["fir"].utilization == pytest.approx(0.5)
        assert by_name["fft"].utilization == pytest.approx(0.25)
        assert by_name["fir"].gates == 12_000

    def test_flags_passed_through(self):
        profiles = profiles_from_run(
            {"fir": (1, 0.0)},
            window_ns=1.0,
            flags={"fir": {"spec_change_expected": True}},
        )
        assert profiles[0].spec_change_expected

    def test_utilization_clamped(self):
        profiles = profiles_from_run({"x": (1, 2000.0)}, window_ns=1000.0)
        assert profiles[0].utilization == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            profiles_from_run({}, window_ns=0)
