"""Report rendering: tables and CSV."""

from repro.dse import DsePoint, format_points, format_table, points_to_rows, to_csv, write_csv


ROWS = [
    {"tech": "asic", "lat": 27.43, "flex": False},
    {"tech": "morphosys", "lat": 144.57, "flex": True},
]


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(ROWS, title="sweep")
        lines = text.splitlines()
        assert lines[0] == "sweep"
        assert "tech" in lines[1] and "lat" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "asic" in lines[3]
        assert "morphosys" in lines[4]

    def test_column_selection(self):
        text = format_table(ROWS, columns=["lat"])
        assert "tech" not in text
        assert "144.570" in text

    def test_bool_and_float_formatting(self):
        text = format_table(ROWS)
        assert "yes" in text and "no" in text
        assert "27.430" in text

    def test_scientific_for_extremes(self):
        text = format_table([{"v": 1.5e9}, {"v": 1e-6}])
        assert "e+09" in text and "e-06" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="t")


class TestPointsHelpers:
    def _points(self):
        return [
            DsePoint(params={"tech": "asic"}, metrics={"lat": 1.0}),
            DsePoint(params={"tech": "bad"}, metrics={}, error="Boom: x"),
        ]

    def test_points_to_rows_includes_errors(self):
        rows = points_to_rows(self._points(), ["tech"], ["lat"])
        assert rows[0] == {"tech": "asic", "lat": 1.0}
        assert rows[1]["error"] == "Boom: x"

    def test_format_points_appends_error_column(self):
        text = format_points(self._points(), ["tech"], ["lat"], title="t")
        assert "error" in text and "Boom" in text


class TestCsv:
    def test_to_csv_roundtrip(self):
        text = to_csv(ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "tech,lat,flex"
        assert lines[1].startswith("asic,27.43")
        assert len(lines) == 3

    def test_to_csv_empty(self):
        assert to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ROWS, columns=["tech"])
        content = path.read_text()
        assert content.splitlines()[0] == "tech"
        assert "morphosys" in content


class TestHeterogeneousRows:
    # Regression: columns used to come from rows[0] only, so keys first
    # appearing in later rows (the error column of a failed sweep point,
    # DRCF metrics absent from ASIC points) were silently dropped.
    ROWS = [
        {"tech": "asic", "lat": 1.0},
        {"tech": "fpga", "lat": 2.0, "switches": 4},
        {"tech": "bad", "error": "SimulationError: deadlock"},
    ]

    def test_to_csv_unions_columns_across_rows(self):
        lines = to_csv(self.ROWS).strip().splitlines()
        assert lines[0] == "tech,lat,switches,error"
        assert lines[1] == "asic,1.0,,"
        assert lines[3].endswith("SimulationError: deadlock")

    def test_format_table_unions_columns_across_rows(self):
        text = format_table(self.ROWS)
        assert "switches" in text
        assert "error" in text
        assert "deadlock" in text
