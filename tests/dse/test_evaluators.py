"""The canned architecture evaluator (kept small: real simulations run)."""

import pytest

from repro.dse import evaluate_architecture, make_jobs
from repro.kernel import SimulationError


class TestMakeJobs:
    def test_workload_selection(self):
        inter = make_jobs({"workload": "interleaved", "n_frames": 2, "accels": ("fir", "fft")})
        batch = make_jobs({"workload": "batched", "n_frames": 2, "accels": ("fir", "fft")})
        rand = make_jobs({"workload": "random", "n_frames": 2, "accels": ("fir", "fft")})
        assert [j.accel for j in inter] == ["fir", "fft", "fir", "fft"]
        assert [j.accel for j in batch] == ["fir", "fir", "fft", "fft"]
        assert len(rand) == 4

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_jobs({"workload": "bursty"})


class TestEvaluateArchitecture:
    def test_asic_point_metrics(self):
        metrics = evaluate_architecture(
            {"tech": "asic", "n_frames": 1, "accels": ("fir", "xtea")}
        )
        assert metrics["switches"] == 0
        assert metrics["bus_config_words"] == 0
        assert metrics["flexible"] is False
        assert metrics["makespan_us"] > 0
        assert metrics["jobs"] == 2

    def test_reconfigurable_point_metrics(self):
        metrics = evaluate_architecture(
            {"tech": "morphosys", "n_frames": 1, "accels": ("fir", "xtea")}
        )
        assert metrics["switches"] == 2
        assert metrics["bus_config_words"] > 0
        assert metrics["flexible"] is True
        assert 0 < metrics["area_saving_vs_static_fabric"] < 1
        assert metrics["energy_mj"] > 0

    def test_ref8_baseline_model(self):
        full = evaluate_architecture(
            {"tech": "morphosys", "n_frames": 1, "accels": ("fir", "xtea")}
        )
        ref8 = evaluate_architecture(
            {
                "tech": "morphosys",
                "n_frames": 1,
                "accels": ("fir", "xtea"),
                "baseline_model": "ref8",
            }
        )
        assert ref8["bus_config_words"] == 0
        assert ref8["makespan_us"] <= full["makespan_us"]

    def test_policy_and_prefetch_knobs(self):
        metrics = evaluate_architecture(
            {
                "tech": "morphosys",
                "n_frames": 1,
                "accels": ("fir", "xtea"),
                "policy": "fifo",
                "prefetch": True,
            }
        )
        assert "prefetch_requests" in metrics

    def test_verification_catches_bad_outputs(self, monkeypatch):
        import repro.dse.evaluators as ev

        monkeypatch.setattr(ev, "golden_outputs", lambda spec: ["wrong"])
        with pytest.raises(SimulationError, match="wrong output"):
            evaluate_architecture(
                {"tech": "asic", "n_frames": 1, "accels": ("fir",)}
            )


class TestEvaluateRobustness:
    def test_merges_performance_and_dependability_metrics(self):
        from repro.dse import evaluate_robustness

        metrics = evaluate_robustness(
            {
                "tech": "virtex2pro",
                "n_frames": 1,
                "accels": ("fir", "fft"),
                "fault_trials": 2,
                "recovery": "retry",
            }
        )
        assert metrics["makespan_us"] > 0  # the architecture row survived
        assert metrics["recovery"] == "retry"
        assert metrics["fault_trials"] == 2
        assert 0.0 <= metrics["fault_coverage"] <= 1.0
        for rate in ("sdc_rate", "hang_rate", "masked_rate"):
            assert 0.0 <= metrics[rate] <= 1.0
        assert metrics["mttr_us"] >= 0.0

    def test_rejects_dedicated_logic_points(self):
        from repro.dse import evaluate_robustness

        with pytest.raises(KeyError, match="reconfigurable"):
            evaluate_robustness({"tech": "asic", "accels": ("fir",)})
