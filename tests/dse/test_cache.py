"""The evaluation cache: keys, fingerprints, entries, journal."""

import json

from repro.dse import canonical_params, evaluator_fingerprint, params_key
from repro.dse.cache import EvalCache, SweepJournal


def eval_a(params):
    return {"y": 1}


def eval_b(params):
    return {"y": 2}


class TestCanonicalization:
    def test_key_order_does_not_matter(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})

    def test_tuples_and_lists_unify(self):
        assert params_key({"accels": ("fir", "fft")}) == params_key(
            {"accels": ["fir", "fft"]}
        )

    def test_exclude_drops_result_neutral_keys(self):
        assert params_key({"x": 1, "fault_workers": 4}, exclude=("fault_workers",)) == \
            params_key({"x": 1})

    def test_different_params_different_keys(self):
        assert params_key({"x": 1}) != params_key({"x": 2})

    def test_non_json_values_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert "<odd>" in canonical_params({"o": Odd()})


class TestFingerprint:
    def test_stable_for_one_evaluator(self):
        assert evaluator_fingerprint(eval_a) == evaluator_fingerprint(eval_a)

    def test_distinguishes_evaluators(self):
        assert evaluator_fingerprint(eval_a) != evaluator_fingerprint(eval_b)


class TestEvalCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = EvalCache(str(tmp_path), "fp1")
        assert cache.get({"x": 1}) is None
        cache.put({"x": 1}, {"y": 10})
        assert cache.get({"x": 1}) == {"y": 10}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        EvalCache(str(tmp_path), "fp1").put({"x": 1}, {"y": 10})
        stale = EvalCache(str(tmp_path), "fp2")
        assert stale.get({"x": 1}) is None
        assert stale.stats.invalidated == 1
        assert stale.stats.misses == 1
        # A fresh put under the new fingerprint replaces the entry.
        stale.put({"x": 1}, {"y": 11})
        assert stale.get({"x": 1}) == {"y": 11}
        assert len(stale) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(str(tmp_path), "fp1")
        cache.put({"x": 1}, {"y": 10})
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{ not json")
        assert cache.get({"x": 1}) is None


class TestSweepJournal:
    def test_record_lookup_and_reload(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path, "fp1")
        key = params_key({"x": 1})
        journal.record(key, {"x": 1}, {"y": 10}, None)
        assert journal.lookup(key)["metrics"] == {"y": 10}
        reloaded = SweepJournal(path, "fp1")
        assert len(reloaded) == 1
        assert reloaded.lookup(key)["error"] is None

    def test_stale_fingerprint_discards(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path, "fp1")
        journal.record(params_key({"x": 1}), {"x": 1}, {"y": 10}, None)
        stale = SweepJournal(path, "fp2")
        assert len(stale) == 0
        assert stale.stale_entries == 1
        # The file is re-headed for the new fingerprint.
        assert SweepJournal(path, "fp2").fingerprint == "fp2"

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path), "fp1")
        journal.record(params_key({"x": 1}), {"x": 1}, {"y": 10}, None)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "half-writt')  # killed mid-write
        survivor = SweepJournal(str(path), "fp1")
        assert len(survivor) == 1

    def test_error_entries_roundtrip(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path, "fp1")
        key = params_key({"x": 3})
        journal.record(key, {"x": 3}, {}, "RuntimeError: boom")
        entry = SweepJournal(path, "fp1").lookup(key)
        assert entry["error"] == "RuntimeError: boom"
        assert json.loads(open(path).readline())["schema"] == "dse-journal/v1"
