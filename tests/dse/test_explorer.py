"""The DSE driver."""

import pytest

from repro.dse import DsePoint, Explorer, ParameterSpace, best_point


def square_evaluator(params):
    return {"cost": params["x"] ** 2, "gain": -params["x"]}


class TestExplorer:
    def test_evaluates_all_points(self):
        space = ParameterSpace().add_axis("x", [1, 2, 3])
        points = Explorer(square_evaluator).run(space)
        assert [p.metrics["cost"] for p in points] == [1, 4, 9]
        assert all(p.ok for p in points)

    def test_point_get_falls_back_to_params(self):
        point = DsePoint(params={"x": 2}, metrics={"cost": 4})
        assert point.get("cost") == 4
        assert point.get("x") == 2
        assert point.get("ghost", "dflt") == "dflt"

    def test_error_capture_mode(self):
        def flaky(params):
            if params["x"] == 2:
                raise RuntimeError("bad point")
            return {"cost": params["x"]}

        space = ParameterSpace().add_axis("x", [1, 2, 3])
        points = Explorer(flaky, raise_on_error=False).run(space)
        assert [p.ok for p in points] == [True, False, True]
        assert "bad point" in points[1].error

    def test_error_raise_mode(self):
        def broken(params):
            raise RuntimeError("boom")

        space = ParameterSpace().add_axis("x", [1])
        with pytest.raises(RuntimeError, match="boom"):
            Explorer(broken).run(space)


class TestBestPoint:
    def test_minimize_and_maximize(self):
        space = ParameterSpace().add_axis("x", [1, 2, 3])
        points = Explorer(square_evaluator).run(space)
        assert best_point(points, "cost").params["x"] == 1
        assert best_point(points, "gain", minimize=False).params["x"] == 1

    def test_failed_points_ignored(self):
        points = [
            DsePoint(params={}, metrics={}, error="bad"),
            DsePoint(params={"x": 5}, metrics={"cost": 10}),
        ]
        assert best_point(points, "cost").params["x"] == 5

    def test_all_failed_rejected(self):
        with pytest.raises(ValueError, match="no successful"):
            best_point([DsePoint(params={}, metrics={}, error="bad")], "cost")

    def test_points_missing_the_metric_are_skipped(self):
        # Heterogeneous sweeps are normal: ASIC points carry no
        # reconfiguration metrics.  A successful point lacking the metric
        # must not blow up the selection (regression: bare KeyError).
        points = [
            DsePoint(params={"tech": "asic"}, metrics={"lat": 1.0}),
            DsePoint(params={"tech": "fpga"}, metrics={"lat": 2.0, "switches": 4}),
            DsePoint(params={"tech": "cgra"}, metrics={"lat": 3.0, "switches": 2}),
        ]
        assert best_point(points, "switches").params["tech"] == "cgra"
        assert best_point(points, "switches", minimize=False).params["tech"] == "fpga"

    def test_maximize_works_on_non_numeric_metrics(self):
        # Regression: minimize=False used to negate the value, which
        # raised TypeError for any orderable-but-not-negatable metric.
        points = [
            DsePoint(params={"i": 0}, metrics={"grade": "bronze"}),
            DsePoint(params={"i": 1}, metrics={"grade": "silver"}),
        ]
        assert best_point(points, "grade", minimize=False).params["i"] == 1
        assert best_point(points, "grade").params["i"] == 0

    def test_metric_absent_everywhere_names_it(self):
        points = [DsePoint(params={}, metrics={"lat": 1.0})]
        with pytest.raises(ValueError, match="'switches'"):
            best_point(points, "switches")


class TestPartialResultsOnRaise:
    def test_exception_carries_already_evaluated_points(self):
        def flaky(params):
            if params["x"] == 3:
                raise RuntimeError("bad point")
            return {"cost": params["x"]}

        space = ParameterSpace().add_axis("x", [1, 2, 3])
        with pytest.raises(RuntimeError, match="bad point") as excinfo:
            Explorer(flaky).run(space)
        assert [p.params["x"] for p in excinfo.value.partial_points] == [1, 2]
