"""The sweep engine: parallel determinism, caching, resume, partial results.

Evaluators live at module level so ``multiprocessing`` can pickle them
into pool workers.
"""

import pytest

from repro.dse import EvalCache, Explorer, ParameterSpace, SweepJournal
from repro.dse.cache import params_key
from repro.parallel import SEED_STRIDE, derive_seed, map_ordered


def double_eval(params):
    return {"y": params["x"] * 2}


def flaky_eval(params):
    if params["x"] == 3:
        raise RuntimeError("boom at 3")
    return {"y": params["x"]}


def forbidden_eval(params):
    raise AssertionError("evaluator must not be called on a resumed point")


def _space(values):
    return ParameterSpace().add_axis("x", values)


class TestParallelHelpers:
    def test_derive_seed_matches_campaign_formula(self):
        assert derive_seed(7, 3) == 7 * SEED_STRIDE + 3

    def test_map_ordered_serial_and_parallel_agree(self):
        payloads = [{"x": i} for i in range(6)]
        serial = list(map_ordered(double_eval, payloads, workers=1))
        parallel = list(map_ordered(double_eval, payloads, workers=3))
        assert serial == parallel
        assert [r["y"] for r in serial] == [0, 2, 4, 6, 8, 10]

    def test_map_ordered_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="boom at 3"):
            list(map_ordered(flaky_eval, [{"x": 3}], workers=1))


class TestWorkerDeterminism:
    def test_reports_byte_identical_across_worker_counts(self):
        space = _space([1, 2, 3, 4, 5])
        explorer = Explorer(double_eval)
        serial = explorer.sweep(space, workers=1)
        parallel = explorer.sweep(space, workers=2)
        assert serial.to_json() == parallel.to_json()
        assert [p.params["x"] for p in parallel.points] == [1, 2, 3, 4, 5]

    def test_run_returns_points_in_enumeration_order(self):
        points = Explorer(double_eval).run(_space([3, 1, 2]), workers=2)
        assert [p.params["x"] for p in points] == [3, 1, 2]


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        space = _space([1, 2, 3])
        explorer = Explorer(double_eval)
        cold = explorer.sweep(space, cache=EvalCache(str(tmp_path), "fp"))
        assert cold.evaluated == 3
        assert cold.cache["stores"] == 3 and cold.cache["hits"] == 0
        warm = explorer.sweep(space, cache=EvalCache(str(tmp_path), "fp"))
        assert warm.evaluated == 0
        assert warm.cache["hits"] == 3 and warm.cache["hit_rate"] == 1.0
        assert warm.to_json() == cold.to_json()

    def test_fingerprint_change_re_evaluates(self, tmp_path):
        space = _space([1, 2])
        explorer = Explorer(double_eval)
        explorer.sweep(space, cache=EvalCache(str(tmp_path), "fp-old"))
        after_edit = explorer.sweep(space, cache=EvalCache(str(tmp_path), "fp-new"))
        assert after_edit.evaluated == 2
        assert after_edit.cache["invalidated"] == 2

    def test_errors_are_not_cached(self, tmp_path):
        cache = EvalCache(str(tmp_path), "fp")
        report = Explorer(flaky_eval, raise_on_error=False).sweep(
            _space([1, 3]), cache=cache
        )
        assert [p.ok for p in report.points] == [True, False]
        assert cache.stats.stores == 1
        assert cache.get({"x": 3}) is None


class TestResume:
    def test_resumes_completed_points(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        explorer = Explorer(double_eval)
        first = explorer.sweep(_space([1, 2]), journal=SweepJournal(path, "fp"))
        assert first.evaluated == 2
        grown = explorer.sweep(_space([1, 2, 3, 4]), journal=SweepJournal(path, "fp"))
        assert grown.resumed == 2
        assert grown.evaluated == 2
        assert [p.metrics["y"] for p in grown.points] == [2, 4, 6, 8]

    def test_fully_journaled_sweep_never_calls_evaluator(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        Explorer(double_eval).sweep(_space([1, 2]), journal=SweepJournal(path, "fp"))
        replay = Explorer(forbidden_eval).sweep(
            _space([1, 2]), journal=SweepJournal(path, "fp")
        )
        assert replay.resumed == 2 and replay.evaluated == 0
        assert [p.metrics["y"] for p in replay.points] == [2, 4]

    def test_resume_after_kill(self, tmp_path):
        """A journal with a torn tail (killed mid-write) still resumes."""
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path), "fp")
        journal.record(params_key({"x": 1}), {"x": 1}, {"y": 2}, None)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn')
        report = Explorer(double_eval).sweep(
            _space([1, 2, 3]), journal=SweepJournal(str(path), "fp")
        )
        assert report.resumed == 1
        assert report.evaluated == 2
        assert [p.metrics["y"] for p in report.points] == [2, 4, 6]

    def test_journal_and_cache_compose(self, tmp_path):
        cache = EvalCache(str(tmp_path / "cache"), "fp")
        Explorer(double_eval).sweep(_space([1, 2]), cache=cache)
        # New sweep, fresh journal: cache hits are recorded into the
        # journal so a later resume needs neither cache nor simulation.
        path = str(tmp_path / "sweep.jsonl")
        mixed = Explorer(double_eval).sweep(
            _space([1, 2, 3]),
            cache=EvalCache(str(tmp_path / "cache"), "fp"),
            journal=SweepJournal(path, "fp"),
        )
        assert mixed.evaluated == 1 and mixed.cache["hits"] == 2
        replay = Explorer(forbidden_eval).sweep(
            _space([1, 2, 3]), journal=SweepJournal(path, "fp")
        )
        assert replay.resumed == 3


class TestPartialResults:
    def test_serial_raise_attaches_completed_prefix(self):
        with pytest.raises(RuntimeError, match="boom at 3") as excinfo:
            Explorer(flaky_eval).run(_space([1, 2, 3, 4]))
        partial = excinfo.value.partial_points
        assert [p.params["x"] for p in partial] == [1, 2]
        assert all(p.ok for p in partial)

    def test_parallel_raise_attaches_completed_prefix(self):
        with pytest.raises(RuntimeError, match="boom at 3") as excinfo:
            Explorer(flaky_eval).run(_space([1, 2, 3, 4]), workers=2)
        assert [p.params["x"] for p in excinfo.value.partial_points] == [1, 2]

    def test_raise_still_journals_completed_points(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError):
            Explorer(flaky_eval).run(
                _space([1, 2, 3]), journal=SweepJournal(path, "fp")
            )
        assert len(SweepJournal(path, "fp")) == 2


class TestSweepReport:
    def test_json_excludes_volatile_provenance(self, tmp_path):
        report = Explorer(double_eval).sweep(
            _space([1]), workers=2, cache=EvalCache(str(tmp_path), "fp")
        )
        assert report.workers == 2 and report.cache is not None
        assert '"workers"' not in report.to_json()
        assert '"cache"' not in report.to_json()

    def test_render_surfaces_counters_and_table(self, tmp_path):
        cache = EvalCache(str(tmp_path), "fp")
        Explorer(double_eval).sweep(_space([1, 2]), cache=cache)
        warm = Explorer(double_eval).sweep(
            _space([1, 2]), cache=EvalCache(str(tmp_path), "fp")
        )
        text = warm.render(title="t")
        assert "cache-hits=2" in text
        assert "hit rate 100%" in text
        assert "| y" in text or "y " in text
