"""Power/energy extension (paper future work, experiment A4)."""

import pytest

from repro.core import EnergyBreakdown, PowerModel
from repro.kernel import us
from tests.conftest import drive
from tests.core.helpers import DrcfRig, small_tech


class TestEnergyBreakdown:
    def test_total_and_addition(self):
        a = EnergyBreakdown(active_j=1.0, reconfig_j=2.0, idle_j=3.0)
        b = EnergyBreakdown(active_j=0.5)
        total = a + b
        assert total.active_j == 1.5
        assert total.total_j == pytest.approx(6.5)


class TestPowerModelPieces:
    def test_active_energy(self):
        tech = small_tech(active_power_w_per_gate_mhz=1e-7, fabric_clock_hz=100e6)
        model = PowerModel(tech)
        # 1000 gates at 1e-7*100 = 1e-5 W/gate... -> 0.01 W for 10 us = 1e-7 J
        assert model.active_energy(1000, us(10)) == pytest.approx(
            tech.active_power_w(1000) * 10e-6
        )

    def test_reconfig_energy(self):
        tech = small_tech(config_power_w=0.05)
        assert PowerModel(tech).reconfig_energy(us(100)) == pytest.approx(0.05 * 100e-6)

    def test_idle_energy(self):
        tech = small_tech(idle_power_w_per_gate=1e-9)
        assert PowerModel(tech).idle_energy(1000, us(1000)) == pytest.approx(
            1e-6 * 1e-3
        )


class TestDrcfReport:
    def _run_rig(self):
        rig = DrcfRig(n_contexts=2, context_gates=1000)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        return rig

    def test_report_has_context_and_fabric_rows(self):
        rig = self._run_rig()
        model = PowerModel(rig.tech)
        report = model.drcf_report(rig.drcf)
        assert set(report) == {"s0", "s1", "__fabric__"}
        assert report["s0"].reconfig_j > 0
        assert report["s1"].active_j > 0
        assert report["__fabric__"].idle_j > 0

    def test_total_sums_rows(self):
        rig = self._run_rig()
        model = PowerModel(rig.tech)
        report = model.drcf_report(rig.drcf)
        total = model.drcf_total(rig.drcf)
        assert total.total_j == pytest.approx(
            sum(part.total_j for part in report.values())
        )

    def test_explicit_window(self):
        rig = self._run_rig()
        model = PowerModel(rig.tech)
        small = model.drcf_total(rig.drcf, us(1))
        large = model.drcf_total(rig.drcf, us(1000))
        assert large.idle_j > small.idle_j
        assert large.active_j == pytest.approx(small.active_j)

    def test_static_alternative_leaks_on_all_blocks(self):
        rig = self._run_rig()
        model = PowerModel(rig.tech)
        window = rig.sim.now
        active_times = {
            name: rig.drcf.stats.context(name).active_time
            for name in ("s0", "s1")
        }
        static = model.static_accelerators_total(
            rig.drcf.contexts, active_times, window
        )
        dynamic = model.drcf_total(rig.drcf, window)
        # The static architecture has no reconfiguration energy...
        assert static.reconfig_j == 0.0
        assert dynamic.reconfig_j > 0.0
        # ...but leaks on the sum of gates rather than the largest context.
        assert static.idle_j > dynamic.idle_j
