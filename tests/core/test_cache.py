"""On-chip configuration cache: LRU behaviour and DRCF integration."""

import pytest

from repro.core import ConfigCache
from tests.core.helpers import DrcfRig, small_tech


class TestCacheUnit:
    def test_lru_eviction_order(self):
        cache = ConfigCache(300)
        cache.insert("a", 100)
        cache.insert("b", 100)
        cache.insert("c", 100)
        assert cache.lookup("a")  # touch a
        cache.insert("d", 100)  # evicts b (LRU)
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c") and cache.contains("d")
        assert cache.evictions == 1

    def test_oversized_bitstream_not_cached(self):
        cache = ConfigCache(100)
        cache.insert("huge", 500)
        assert not cache.contains("huge")
        assert cache.used_bytes == 0

    def test_hit_miss_accounting(self):
        cache = ConfigCache(100)
        assert not cache.lookup("x")
        cache.insert("x", 50)
        assert cache.lookup("x")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_refill_time_scales(self):
        cache = ConfigCache(10_000, words_per_cycle=4, clock_freq_hz=100e6)
        assert cache.refill_time(1600) < cache.refill_time(6400)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfigCache(0)
        with pytest.raises(ValueError):
            ConfigCache(100, words_per_cycle=0)


class TestDrcfIntegration:
    def _run(self, cache_bytes, accesses=(0, 1, 0, 1, 0, 1)):
        # Fast config port so loads are bus-bound and the cache saves time.
        tech = small_tech(
            context_slots=1, config_port_width_bits=256, config_port_freq_hz=400e6
        )
        rig = DrcfRig(
            n_contexts=2,
            tech=tech,
            context_gates=2000,
            config_cache_bytes=cache_bytes,
        )

        def body():
            for index in accesses:
                yield from rig.master_read(rig.addr(index))

        rig.sim.spawn("p", body)
        rig.sim.run()
        return rig

    def test_cache_removes_repeat_bus_traffic(self):
        plain = self._run(None)
        cached = self._run(8192)  # holds both 2000-byte bitstreams
        words = plain.drcf.contexts[0].params.config_words(4)
        # Without cache: 6 external fetches; with: only the 2 cold ones.
        assert plain.bus.monitor.words_by_tag("config") == 6 * words
        assert cached.bus.monitor.words_by_tag("config") == 2 * words
        assert cached.drcf.config_cache.hits == 4
        # Stats follow the *external* traffic.
        assert cached.drcf.stats.total_config_words == 2 * words
        assert cached.sim.now < plain.sim.now

    def test_small_cache_thrashes(self):
        # Capacity for one bitstream only: alternating contexts never hit.
        cached = self._run(2048)
        assert cached.drcf.config_cache.hits == 0
        assert cached.drcf.config_cache.evictions > 0

    def test_functional_results_unaffected(self):
        rig = self._run(8192)
        model = {}

        def body():
            for index in (0, 1, 0):
                yield from rig.master_write(rig.addr(index, 2), 40 + index)
                model[index] = 40 + index
                data = yield from rig.master_read(rig.addr(index, 2))
                assert data == [model[index]]

        rig.sim.spawn("verify", body)
        rig.sim.run()

    def test_no_cache_attribute_when_disabled(self):
        rig = self._run(None)
        assert rig.drcf.config_cache is None
