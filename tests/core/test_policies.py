"""Slot managers and replacement policies — with property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AreaSlotManager,
    Context,
    ContextParameters,
    FifoPolicy,
    FixedSlotManager,
    LruPolicy,
    PinnedLruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.policies import Slot
from repro.kernel import SimulationError, Simulator
from tests.core.helpers import DummySlave


def make_contexts(n, gates=100):
    sim = Simulator()
    out = []
    for i in range(n):
        slave = DummySlave(f"s{i}", sim=sim, base=0x1000 * (i + 1))
        out.append(
            Context(f"s{i}", slave, ContextParameters(0x100 * i, 64), gates=gates)
        )
    return out


def load(manager, context, active=None):
    """Simulate what the scheduler does on a miss."""
    slot = manager.allocate(context, active)
    slot.context = context
    slot.loading = False
    slot.loaded_at = manager.tick()
    manager.touch(slot)
    return slot


class TestPolicies:
    def _slots(self, metas):
        out = []
        ctxs = make_contexts(len(metas))
        for i, (last_use, loaded_at) in enumerate(metas):
            out.append(Slot(index=i, context=ctxs[i], last_use=last_use, loaded_at=loaded_at))
        return out

    def test_lru_picks_least_recently_used(self):
        slots = self._slots([(5, 0), (2, 1), (9, 2)])
        assert LruPolicy().choose_victim(slots).index == 1

    def test_fifo_picks_oldest_load(self):
        slots = self._slots([(5, 3), (2, 1), (9, 2)])
        assert FifoPolicy().choose_victim(slots).index == 1

    def test_random_is_seeded(self):
        slots = self._slots([(0, 0), (1, 1), (2, 2)])
        a = [RandomPolicy(seed=5).choose_victim(slots).index for _ in range(3)]
        b = [RandomPolicy(seed=5).choose_victim(slots).index for _ in range(3)]
        assert a == b

    def test_random_accepts_an_injected_generator(self):
        # A campaign shares one seeded Random across the whole experiment;
        # an injected generator must win over the seed argument.
        import random

        slots = self._slots([(0, 0), (1, 1), (2, 2)])
        a = [
            RandomPolicy(rng=random.Random(9)).choose_victim(slots).index
            for _ in range(5)
        ]
        b = [
            RandomPolicy(seed=5, rng=random.Random(9)).choose_victim(slots).index
            for _ in range(5)
        ]
        assert a == b

    def test_pinned_lru_protects_pinned(self):
        slots = self._slots([(0, 0), (1, 1)])
        policy = PinnedLruPolicy(pinned=["s0"])
        assert policy.choose_victim(slots).index == 1

    def test_pinned_all_pinned_rejected(self):
        slots = self._slots([(0, 0)])
        policy = PinnedLruPolicy(pinned=["s0"])
        with pytest.raises(SimulationError, match="pinned"):
            policy.choose_victim(slots)

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("random", seed=2), RandomPolicy)
        with pytest.raises(KeyError):
            make_policy("clock")


class TestFixedSlotManager:
    def test_fills_empty_slots_first(self):
        manager = FixedSlotManager(2, LruPolicy())
        a, b = make_contexts(2)
        load(manager, a)
        load(manager, b)
        assert set(manager.resident_contexts()) == {a, b}

    def test_evicts_lru_when_full(self):
        manager = FixedSlotManager(2, LruPolicy())
        a, b, c = make_contexts(3)
        load(manager, a)
        load(manager, b)
        manager.touch(manager.slot_of(a))  # a most recent
        load(manager, c, active=a)
        assert manager.slot_of(b) is None
        assert manager.slot_of(a) is not None

    def test_never_evicts_active_when_alternative_exists(self):
        manager = FixedSlotManager(2, LruPolicy())
        a, b, c = make_contexts(3)
        load(manager, a)
        load(manager, b)
        # a is LRU but active: b must be the victim.
        slot = manager.allocate(c, a)
        assert slot.context is b

    def test_single_slot_replaces_active(self):
        manager = FixedSlotManager(1, LruPolicy())
        a, b = make_contexts(2)
        load(manager, a)
        slot = manager.allocate(b, a)
        assert slot.context is a  # replacing the active IS the switch

    def test_has_idle_capacity(self):
        manager = FixedSlotManager(2, LruPolicy())
        a, b, c = make_contexts(3)
        load(manager, a)
        assert manager.has_idle_capacity(b, active=a)
        load(manager, b)
        # Full, but b is evictable while a is active.
        assert manager.has_idle_capacity(c, active=a)

    def test_invalid_slot_count(self):
        with pytest.raises(ValueError):
            FixedSlotManager(0, LruPolicy())


class TestAreaSlotManager:
    def test_multiple_contexts_fit_by_gates(self):
        manager = AreaSlotManager(250, LruPolicy())
        a, b = make_contexts(2, gates=100)
        load(manager, a)
        load(manager, b)
        assert set(manager.resident_contexts()) == {a, b}

    def test_eviction_frees_enough_gates(self):
        manager = AreaSlotManager(250, LruPolicy())
        a, b, c = make_contexts(3, gates=100)
        load(manager, a)
        load(manager, b)
        load(manager, c, active=b)
        # a (LRU, not active) evicted; b and c resident (200 <= 250).
        assert manager.slot_of(a) is None
        assert set(manager.resident_contexts()) == {b, c}

    def test_oversized_context_rejected(self):
        manager = AreaSlotManager(50, LruPolicy())
        (a,) = make_contexts(1, gates=100)
        with pytest.raises(SimulationError, match="exceeds fabric capacity"):
            manager.allocate(a, None)

    def test_has_idle_capacity_counts_evictables(self):
        manager = AreaSlotManager(200, LruPolicy())
        a, b, c = make_contexts(3, gates=100)
        load(manager, a)
        load(manager, b)
        assert manager.has_idle_capacity(c, active=a)  # can evict b
        # If both residents were somehow active-protected there'd be no room;
        # with only one active there always is here.

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AreaSlotManager(0, LruPolicy())


class TestResidencyProperties:
    @given(
        st.integers(1, 4),
        st.lists(st.integers(0, 5), min_size=1, max_size=40),
    )
    def test_fixed_manager_invariants(self, n_slots, accesses):
        manager = FixedSlotManager(n_slots, LruPolicy())
        contexts = make_contexts(6)
        active = None
        for index in accesses:
            ctx = contexts[index]
            if manager.slot_of(ctx) is None:
                load(manager, ctx, active)
            active = ctx
            # Invariants: never more than n_slots resident; no duplicates;
            # the most recently requested context is always resident.
            resident = manager.resident_contexts()
            assert len(resident) <= n_slots
            assert len(set(id(c) for c in resident)) == len(resident)
            assert manager.slot_of(ctx) is not None

    @given(
        st.integers(100, 400),
        st.lists(st.integers(0, 5), min_size=1, max_size=40),
    )
    def test_area_manager_never_exceeds_capacity(self, capacity, accesses):
        manager = AreaSlotManager(capacity, LruPolicy())
        contexts = make_contexts(6, gates=100)
        active = None
        for index in accesses:
            ctx = contexts[index]
            if manager.slot_of(ctx) is None:
                load(manager, ctx, active)
            active = ctx
            used = sum(c.gates for c in manager.resident_contexts())
            assert used <= capacity
            assert manager.slot_of(ctx) is not None
