"""Codegen: executable build source and the drcf_own-style listing."""

import pytest

from repro.apps import make_baseline_netlist
from repro.core import (
    CodegenError,
    Netlist,
    default_env,
    exec_build_source,
    generate_build_source,
    generate_drcf_listing,
    generate_transformation_diff,
    transform_to_drcf,
)
from repro.core.policies import LruPolicy
from repro.kernel import Simulator
from repro.tech import VIRTEX2PRO


@pytest.fixture
def baseline():
    return make_baseline_netlist(("fir", "fft"))


class TestBuildSource:
    def test_source_contains_declarations_and_bindings(self, baseline):
        netlist, _ = baseline
        source = generate_build_source(netlist)
        assert "def build_top(sim):" in source
        assert "fir = FirAccelerator('fir', parent=top" in source
        assert "cpu.mst_port.bind(system_bus)" in source
        assert "system_bus.register_slave(fir)" in source

    def test_source_is_executable_and_equivalent(self, baseline):
        netlist, _ = baseline
        source = generate_build_source(netlist)
        sim = Simulator()
        top = exec_build_source(source, sim, default_env(netlist))
        # Same children, same structure as direct elaboration.
        direct = netlist.elaborate(Simulator())
        assert [c.basename for c in top.children] == [
            c.basename for c in direct.top.children
        ]
        # Bus bindings reproduced.
        bus = top.child("system_bus")
        assert {s.basename for s in bus.slaves} == {"mem", "fir", "fft", "cfgmem"}

    def test_executed_system_simulates(self, baseline):
        netlist, info = baseline
        source = generate_build_source(netlist)
        sim = Simulator()
        top = exec_build_source(source, sim, default_env(netlist))
        bus = top.child("system_bus")
        result = {}

        def body():
            yield from bus.write(info.accel_bases["fir"] + 8, 16, master="cpu")
            data = yield from bus.read(info.accel_bases["fir"] + 8, 1, master="cpu")
            result["jobsize"] = data[0]

        sim.spawn("p", body)
        sim.run()
        assert result["jobsize"] == 16

    def test_transformed_netlist_not_serializable(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        with pytest.raises(CodegenError, match="cannot render"):
            generate_build_source(result.netlist)

    def test_value_formatting(self):
        from repro.core.codegen import _format_value
        from repro.kernel import SimTime, us

        assert _format_value(True) == "True"
        assert _format_value(5) == "5"
        assert _format_value(0x10000) == "0x10000"
        assert _format_value(2.5) == "2.5"
        assert _format_value("split") == "'split'"
        assert _format_value(None) == "None"
        assert _format_value(us(1)) == "SimTime.from_fs(1000000000)"
        assert _format_value(VIRTEX2PRO) == "preset('virtex2pro')"
        assert _format_value(LruPolicy()) == "make_policy('lru')"


class TestDrcfListing:
    def test_listing_matches_paper_structure(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        listing = generate_drcf_listing(result.report)
        # Implements the analyzed slave interface (paper's `public bus_slv_if`).
        assert "class drcf_drcf1(Module, BusSlaveIf):" in listing
        # Template parts: scheduler thread and routed interface methods.
        assert "self.add_thread(self.arb_and_instr)" in listing
        assert "def arb_and_instr(self):" in listing
        assert "def get_low_add(self):" in listing
        assert "def read(self, addr, count=1):" in listing
        # Inserted parts: analyzed ports, phase-2 constructors and bindings.
        assert "# inserted" in listing
        assert "self.fir = FirAccelerator('fir', parent=self" in listing
        # Context table rendered with placements.
        assert "context table" in listing
        assert hex(info.cfg_base) in listing

    def test_union_address_range_in_listing(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        listing = generate_drcf_listing(result.report)
        assert f"return {info.accel_bases['fir']:#x}" in listing

    def test_listing_is_valid_python(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        compile(generate_drcf_listing(result.report), "<listing>", "exec")


class TestDiff:
    def test_diff_shows_rewrite(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        diff = generate_transformation_diff(netlist, result.netlist)
        assert "- fir" in diff
        assert "- fft" in diff
        assert "+ drcf1 = Drcf(...)" in diff
