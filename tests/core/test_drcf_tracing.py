"""Waveform tracing of DRCF context activity."""

from repro.kernel import VcdTracer
from tests.core.helpers import DrcfRig


class TestActiveContextSignal:
    def _run(self, tracer=None):
        rig = DrcfRig(n_contexts=3)
        if tracer is not None:
            tracer.trace(rig.drcf.active_context_signal, name="active_context", width=8)

        def body():
            for index in (0, 1, 2, 0):
                yield from rig.master_read(rig.addr(index))

        rig.sim.spawn("p", body)
        rig.sim.run()
        return rig

    def test_signal_follows_switches(self):
        rig = self._run()
        # 0 = none, i+1 = contexts[i]; last access targeted context 0.
        assert rig.drcf.active_context_signal.read() == 1

    def test_vcd_records_every_switch(self):
        tracer = VcdTracer("drcf_trace")
        rig = self._run(tracer)
        text = tracer.dumps()
        assert "active_context" in text
        # Initial value + 4 switches.
        assert tracer.change_count == 5
        # The three context ids all appear as vector changes.
        assert "b1 " in text and "b10 " in text and "b11 " in text

    def test_switch_listener_extensible(self):
        rig = DrcfRig(n_contexts=2)
        seen = []
        rig.drcf.scheduler.switch_listeners.append(seen.append)

        def body():
            yield from rig.master_read(rig.addr(1))
            yield from rig.master_read(rig.addr(0))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert seen == ["s1", "s0"]
