"""The four-phase DRCF transformation (Section 5.2 / Figure 4)."""

import pytest

from repro.apps import make_baseline_netlist
from repro.core import (
    Drcf,
    Ref8Drcf,
    analyze_instance,
    analyze_module_spec,
    transform_to_drcf,
)
from repro.kernel import ElaborationError, Module as ModuleBase, Simulator, us
from repro.tech import MORPHOSYS, VIRTEX2PRO


@pytest.fixture
def baseline():
    return make_baseline_netlist(("fir", "fft", "xtea"))


class TestPhase1ModuleAnalysis:
    def test_interfaces_and_ports_analyzed(self, baseline):
        netlist, _ = baseline
        analysis = analyze_module_spec(netlist.component("fir"))
        assert analysis.class_name == "FirAccelerator"
        assert analysis.interfaces == ["BusSlaveIf"]
        assert analysis.implements_slave_if

    def test_address_range_analyzed(self, baseline):
        netlist, info = baseline
        analysis = analyze_module_spec(netlist.component("fft"))
        assert analysis.low_addr == info.accel_bases["fft"]
        assert analysis.high_addr > analysis.low_addr

    def test_gates_from_kwargs_or_instance(self, baseline):
        netlist, _ = baseline
        assert analyze_module_spec(netlist.component("fir")).gates == 12_000
        netlist.component("fir").kwargs["gates"] = 777
        assert analyze_module_spec(netlist.component("fir")).gates == 777


class TestPhase2InstanceAnalysis:
    def test_declaration_constructor_bindings_recorded(self, baseline):
        netlist, info = baseline
        inst = analyze_instance(netlist, "fir")
        assert inst.name == "fir"
        assert inst.factory_name == "FirAccelerator"
        assert inst.kwargs["base"] == info.accel_bases["fir"]
        assert inst.slave_of == "system_bus"
        assert inst.master_of is None


class TestPhase3And4:
    def test_netlist_rewritten(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        names = result.netlist.component_names
        assert "drcf1" in names
        assert "fir" not in names and "fft" not in names
        assert "xtea" in names  # untouched candidate stays
        # DRCF takes the bus position of the first candidate.
        assert names.index("drcf1") == netlist.component_names.index("fir")
        drcf_spec = result.netlist.component("drcf1")
        assert drcf_spec.slave_of == "system_bus"
        assert drcf_spec.master_of == "system_bus"

    def test_original_netlist_untouched(self, baseline):
        netlist, info = baseline
        before = list(netlist.component_names)
        transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        assert netlist.component_names == before

    def test_config_memory_placement_sequential_disjoint(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft", "xtea"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        allocations = result.report.allocations
        assert len(allocations) == 3
        regions = sorted((a.config_addr, a.config_addr + a.size_bytes) for a in allocations)
        for (lo1, hi1), (lo2, hi2) in zip(regions, regions[1:]):
            assert hi1 <= lo2  # disjoint
        # Sizes follow the technology density.
        by_name = {a.name: a for a in allocations}
        assert by_name["fir"].size_bytes == VIRTEX2PRO.context_size_bytes(12_000)

    def test_context_too_big_for_config_memory(self, baseline):
        netlist, info = baseline
        netlist.component("cfgmem").kwargs["size_words"] = 16
        with pytest.raises(ElaborationError, match="does not fit"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )

    def test_extra_delays_override(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
            extra_delays={"fir": us(123)},
        )
        assert result.report.allocations[0].extra_delay == us(123)

    def test_elaborated_drcf_wraps_candidates(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir", "fft"], tech=MORPHOSYS,
            config_memory="cfgmem", config_base=info.cfg_base,
        )
        design = result.netlist.elaborate(Simulator())
        drcf = design["drcf1"]
        assert isinstance(drcf, Drcf)
        assert {c.name for c in drcf.contexts} == {"fir", "fft"}
        # Candidates are children of the DRCF (paper's generated structure).
        assert {c.basename for c in drcf.children} == {"fir", "fft"}
        # Their timing was retargeted to the fabric technology.
        assert drcf.child("fir").tech is MORPHOSYS
        # Regions were registered on the config memory at elaboration.
        assert design["cfgmem"].region_of("fir")[1] == MORPHOSYS.context_size_bytes(12_000)

    def test_custom_drcf_class(self, baseline):
        netlist, info = baseline
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
            drcf_cls=Ref8Drcf,
        )
        design = result.netlist.elaborate(Simulator())
        assert isinstance(design["drcf1"], Ref8Drcf)


class TestValidation:
    def test_no_candidates(self, baseline):
        netlist, _ = baseline
        with pytest.raises(ElaborationError, match="no candidates"):
            transform_to_drcf(netlist, [], tech=VIRTEX2PRO, config_memory="cfgmem")

    def test_duplicate_candidates(self, baseline):
        netlist, _ = baseline
        with pytest.raises(ElaborationError, match="duplicate"):
            transform_to_drcf(
                netlist, ["fir", "fir"], tech=VIRTEX2PRO, config_memory="cfgmem"
            )

    def test_limitation1_same_bus_required(self, baseline):
        netlist, info = baseline
        # Move fft to a second bus: candidates now live at different levels.
        from repro.bus import Bus

        netlist.add("bus2", Bus, clock_freq_hz=100e6)
        netlist.component("fft").slave_of = "bus2"
        with pytest.raises(ElaborationError, match="same bus"):
            transform_to_drcf(
                netlist, ["fir", "fft"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )

    def test_limitation2_address_methods_required(self, baseline):
        netlist, info = baseline
        from repro.cpu import Processor

        netlist.component("fir").factory = Processor  # no get_low_add
        netlist.component("fir").kwargs = {}
        netlist.component("fir").slave_of = "system_bus"
        with pytest.raises(ElaborationError, match="get_low_add"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )

    def test_candidate_without_slave_binding(self, baseline):
        netlist, info = baseline
        netlist.component("fir").slave_of = None
        with pytest.raises(ElaborationError, match="same bus"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )


class _RangedNonSlave(ModuleBase):
    """Advertises an address range but does not implement BusSlaveIf."""

    def __init__(self, name, parent=None, sim=None, base=0x1000, **_kwargs):
        super().__init__(name, parent=parent, sim=sim)
        self.base = base

    def get_low_add(self):
        return self.base

    def get_high_add(self):
        return self.base + 0xFF


class TestErrorPaths:
    """The failure modes a designer actually hits when driving the tool."""

    def test_unknown_candidate_name(self, baseline):
        netlist, info = baseline
        with pytest.raises(ElaborationError, match="no component 'nonesuch'"):
            transform_to_drcf(
                netlist, ["nonesuch"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )

    def test_unknown_config_memory(self, baseline):
        netlist, info = baseline
        with pytest.raises(ElaborationError, match="no component 'nomem'"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="nomem", config_base=info.cfg_base,
            )

    def test_drcf_name_collides_with_existing_instance(self, baseline):
        netlist, info = baseline
        with pytest.raises(ElaborationError, match="duplicate component 'cpu'"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
                drcf_name="cpu",
            )

    def test_candidate_not_a_bus_slave_interface(self, baseline):
        netlist, info = baseline
        spec = netlist.component("fir")
        spec.factory = _RangedNonSlave
        spec.kwargs = {"base": info.accel_bases["fir"]}
        with pytest.raises(ElaborationError, match="does not implement BusSlaveIf"):
            transform_to_drcf(
                netlist, ["fir"], tech=VIRTEX2PRO,
                config_memory="cfgmem", config_base=info.cfg_base,
            )

    def test_first_component_candidate_uses_none_anchor(self):
        # When the first declared component is a candidate there is no
        # anchor to insert after; the DRCF must take the head position.
        from repro.apps.accelerators import FirAccelerator
        from repro.bus import Bus, ConfigMemory
        from repro.core import Netlist

        netlist = Netlist("head")
        netlist.add("fir", FirAccelerator, slave_of="system_bus", base=0x1000_0000)
        netlist.add("system_bus", Bus, protocol="split")
        netlist.add(
            "cfgmem", ConfigMemory, slave_of="system_bus",
            base=0x2000_0000, size_words=4 * 1024 * 1024,
        )
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=0x2000_0000,
        )
        assert result.netlist.component_names[0] == "drcf1"

    def test_insert_after_missing_anchor_rejected(self, baseline):
        from repro.core.netlist import ComponentSpec

        netlist, _ = baseline
        clone = netlist.clone()
        spec = ComponentSpec(name="late", factory=lambda name, parent=None: None)
        with pytest.raises(ElaborationError, match="no anchor 'ghost'"):
            clone.insert_after("ghost", spec)
