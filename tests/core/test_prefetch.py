"""Prefetch predictors and the background-loading driver."""

import pytest

from repro.core import (
    ContextPrefetcher,
    MarkovPredictor,
    RoundRobinPredictor,
    SequencePredictor,
)
from tests.core.helpers import DrcfRig, small_tech


class TestPredictors:
    def test_sequence_follows_schedule(self):
        predictor = SequencePredictor(["a", "b", "c"])
        assert predictor.predict([]) == "a"
        assert predictor.predict(["a"]) == "b"
        assert predictor.predict(["a", "b", "c"]) == "a"  # wraps
        assert predictor.predict(["zzz"]) == "a"  # unknown resets

    def test_sequence_rejects_empty(self):
        with pytest.raises(ValueError):
            SequencePredictor([])

    def test_round_robin(self):
        predictor = RoundRobinPredictor(["x", "y"])
        assert predictor.predict([]) == "x"
        assert predictor.predict(["x"]) == "y"
        assert predictor.predict(["y"]) == "x"

    def test_markov_learns_successors(self):
        predictor = MarkovPredictor()
        history = ["a", "b", "a", "b", "a", "c", "a", "b", "a"]
        # 'a' is followed by 'b' 3 times, by 'c' once.
        assert predictor.predict(history) == "b"

    def test_markov_needs_history(self):
        predictor = MarkovPredictor()
        assert predictor.predict([]) is None
        assert predictor.predict(["a"]) is None

    def test_markov_unseen_current(self):
        predictor = MarkovPredictor()
        assert predictor.predict(["a", "b", "z"]) is None


class TestPrefetcherModule:
    def _run(self, accesses, predictor, n_contexts=3):
        tech = small_tech(context_slots=2, background_load=True)
        rig = DrcfRig(n_contexts=n_contexts, tech=tech, context_gates=2000)
        prefetcher = ContextPrefetcher(
            "pf", sim=rig.sim, drcf=rig.drcf, predictor=predictor
        )

        def body():
            for index in accesses:
                yield from rig.master_read(rig.addr(index))

        rig.sim.spawn("p", body)
        rig.sim.run()
        return rig, prefetcher

    def test_perfect_prediction_hides_fetches(self):
        accesses = [0, 1, 2, 0, 1, 2]
        rig, prefetcher = self._run(
            accesses, SequencePredictor(["s0", "s1", "s2"])
        )
        stats = rig.drcf.stats
        assert prefetcher.requests_issued > 0
        assert stats.prefetch_hits > 0
        # Foreground fetch misses strictly fewer than without prefetch
        # (which would be 6: every access switches on a 2-slot LRU cycle).
        assert stats.fetch_misses < 6

    def test_prefetch_disabled_without_background_load(self):
        rig = DrcfRig(n_contexts=2, tech=small_tech(context_slots=2))
        prefetcher = ContextPrefetcher(
            "pf", sim=rig.sim, drcf=rig.drcf,
            predictor=SequencePredictor(["s0", "s1"]),
        )

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert prefetcher.requests_issued == 0
        assert rig.drcf.stats.background_loads == 0

    def test_no_self_prefetch(self):
        # Predicting the active context issues nothing.
        rig, prefetcher = self._run([0, 0, 0], SequencePredictor(["s0"]))
        assert prefetcher.requests_issued == 0

    def test_end_to_end_speedup_with_overlap_window(self):
        """Prefetch pays off when computation/idle time between invocations
        gives the background load something to overlap with."""
        from repro.kernel import us

        accesses = [0, 1, 2] * 3
        tech = small_tech(context_slots=2, background_load=True)

        def body(rig):
            def run():
                for index in accesses:
                    yield from rig.master_read(rig.addr(index))
                    yield us(40)  # think time: the overlap window

            return run

        rig_plain = DrcfRig(n_contexts=3, tech=tech, context_gates=2000)
        rig_plain.sim.spawn("p", body(rig_plain))
        rig_plain.sim.run()
        t_plain = rig_plain.sim.now

        rig_pf = DrcfRig(n_contexts=3, tech=tech, context_gates=2000)
        ContextPrefetcher(
            "pf", sim=rig_pf.sim, drcf=rig_pf.drcf,
            predictor=SequencePredictor(["s0", "s1", "s2"]),
        )
        rig_pf.sim.spawn("p", body(rig_pf))
        rig_pf.sim.run()
        assert rig_pf.sim.now < t_plain
        assert rig_pf.drcf.stats.prefetch_hits > 0
