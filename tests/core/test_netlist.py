"""Netlist descriptions: build, rewrite primitives, elaboration."""

import pytest

from repro.bus import Bus, Memory
from repro.core import ComponentSpec, Netlist
from repro.cpu import Processor
from repro.kernel import ElaborationError, Simulator


def simple_netlist():
    netlist = Netlist("top")
    netlist.add("bus", Bus, clock_freq_hz=100e6)
    netlist.add("cpu", Processor, master_of="bus")
    netlist.add("mem", Memory, slave_of="bus", base=0, size_words=64)
    return netlist


class TestBuilding:
    def test_duplicate_component_rejected(self):
        netlist = simple_netlist()
        with pytest.raises(ElaborationError, match="duplicate"):
            netlist.add("cpu", Processor)

    def test_component_lookup(self):
        netlist = simple_netlist()
        assert netlist.component("cpu").factory is Processor
        with pytest.raises(ElaborationError, match="no component"):
            netlist.component("gpu")

    def test_slaves_and_masters_of(self):
        netlist = simple_netlist()
        assert netlist.slaves_of("bus") == ["mem"]
        assert netlist.masters_of("bus") == ["cpu"]

    def test_remove_returns_spec(self):
        netlist = simple_netlist()
        spec = netlist.remove("mem")
        assert spec.name == "mem"
        assert "mem" not in netlist.component_names
        with pytest.raises(ElaborationError):
            netlist.remove("mem")

    def test_insert_after_anchor(self):
        netlist = simple_netlist()
        spec = ComponentSpec("io", Memory, kwargs=dict(base=0x8000, size_words=4))
        netlist.insert_after("bus", spec)
        assert netlist.component_names == ["bus", "io", "cpu", "mem"]

    def test_insert_at_front(self):
        netlist = simple_netlist()
        spec = ComponentSpec("first", Memory, kwargs=dict(base=0x8000, size_words=4))
        netlist.insert_after(None, spec)
        assert netlist.component_names[0] == "first"

    def test_insert_with_bad_anchor(self):
        netlist = simple_netlist()
        spec = ComponentSpec("x", Memory, kwargs=dict(base=0x8000, size_words=4))
        with pytest.raises(ElaborationError, match="anchor"):
            netlist.insert_after("ghost", spec)

    def test_clone_is_independent(self):
        netlist = simple_netlist()
        clone = netlist.clone("copy")
        clone.remove("mem")
        clone.component("cpu").kwargs["clock_freq_hz"] = 1.0
        assert "mem" in netlist.component_names
        assert "clock_freq_hz" not in netlist.component("cpu").kwargs


class TestValidate:
    def test_clean_netlist(self):
        assert simple_netlist().validate() == []

    def test_dangling_references_reported(self):
        netlist = simple_netlist()
        netlist.component("cpu").master_of = "ghost"
        netlist.component("mem").slave_of = "phantom"
        problems = netlist.validate()
        assert len(problems) == 2
        assert any("ghost" in p for p in problems)
        assert any("phantom" in p for p in problems)

    def test_duplicate_base_addresses_reported(self):
        netlist = simple_netlist()
        netlist.add("mem2", Memory, slave_of="bus", base=0, size_words=4)
        problems = netlist.validate()
        assert any("share base address" in p for p in problems)

    def test_different_buses_may_share_base(self):
        netlist = simple_netlist()
        netlist.add("bus2", Bus, clock_freq_hz=100e6)
        netlist.add("mem2", Memory, slave_of="bus2", base=0, size_words=4)
        assert netlist.validate() == []


class TestElaboration:
    def test_instances_built_and_bound(self):
        netlist = simple_netlist()
        sim = Simulator()
        design = netlist.elaborate(sim)
        assert design["cpu"].mst_port.resolve() is design["bus"]
        assert design["bus"].slaves == [design["mem"]]
        assert design.top.full_name == "top"
        assert design["mem"].full_name == "top.mem"

    def test_missing_bus_reference(self):
        netlist = Netlist("top")
        netlist.add("cpu", Processor, master_of="ghost_bus")
        with pytest.raises(ElaborationError, match="unknown component"):
            netlist.elaborate(Simulator())

    def test_post_elaborate_hook_runs(self):
        netlist = simple_netlist()
        seen = []
        netlist.component("mem").post_elaborate = lambda inst, design: seen.append(
            (inst.full_name, "cpu" in design)
        )
        netlist.elaborate(Simulator())
        assert seen == [("top.mem", True)]

    def test_repeated_elaboration_gives_fresh_instances(self):
        netlist = simple_netlist()
        d1 = netlist.elaborate(Simulator())
        d2 = netlist.elaborate(Simulator())
        assert d1["cpu"] is not d2["cpu"]

    def test_design_lookup_errors(self):
        design = simple_netlist().elaborate(Simulator())
        assert "cpu" in design
        assert "gpu" not in design
        with pytest.raises(KeyError, match="no instance"):
            design["gpu"]
        assert sorted(design.instance_names) == ["bus", "cpu", "mem"]
