"""The ref-[8] baseline: switch delay without memory traffic."""

from repro.core import Ref8Drcf
from repro.kernel import ZERO_TIME
from tests.core.helpers import DrcfRig, small_tech


def run_accesses(rig, accesses):
    def body():
        for index in accesses:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run()


class TestNoTraffic:
    def test_switches_generate_no_bus_traffic(self):
        rig = DrcfRig(n_contexts=2, drcf_cls=Ref8Drcf, context_gates=2000)
        run_accesses(rig, [0, 1, 0])
        assert rig.bus.monitor.words_by_tag("config") == 0
        # Switching still happened and was accounted.
        assert rig.drcf.stats.fetch_misses == 3
        assert rig.drcf.stats.total_config_words > 0  # modeled, not transferred

    def test_switch_delay_still_modeled(self):
        # Port-bound time applies even without traffic.
        tech = small_tech(config_port_width_bits=8, config_port_freq_hz=10e6)
        rig = DrcfRig(n_contexts=2, drcf_cls=Ref8Drcf, tech=tech, context_gates=2000)
        run_accesses(rig, [0, 1])
        port_time = tech.raw_load_time(tech.context_size_bytes(2000) * 8)
        assert rig.drcf.stats.total_reconfig_time >= 2 * port_time


class TestUnderestimation:
    def test_ref8_faster_than_full_model_under_contention(self):
        """The divergence the paper criticizes: without modeled config
        traffic the baseline never waits for the bus and never slows other
        masters, so it underestimates execution time."""
        from repro.core import Drcf

        results = {}
        for label, cls in (("full", Drcf), ("ref8", Ref8Drcf)):
            rig = DrcfRig(n_contexts=2, drcf_cls=cls, context_gates=4000)
            run_accesses(rig, [0, 1, 0, 1])
            results[label] = rig.sim.now
        assert results["ref8"] < results["full"]

    def test_functional_results_identical(self):
        from repro.core import Drcf
        from tests.conftest import drive

        outputs = {}
        for label, cls in (("full", Drcf), ("ref8", Ref8Drcf)):
            rig = DrcfRig(n_contexts=2, drcf_cls=cls)

            def body(rig=rig):
                yield from rig.master_write(rig.addr(0, 3), 99)
                data = yield from rig.master_read(rig.addr(0, 3))
                return data

            box = drive(rig.sim, body)
            rig.sim.run()
            outputs[label] = box.value
        assert outputs["full"] == outputs["ref8"] == [99]
