"""Shared builders for core-package tests: a dummy slave and a DRCF rig."""

from __future__ import annotations

from typing import List, Optional

from repro.bus import Bus, BusSlaveIf, ConfigMemory
from repro.core import Context, ContextParameters, Drcf
from repro.kernel import Module, Simulator, cycles_to_time, ns, us
from repro.tech import ReconfigTechnology


class DummySlave(Module, BusSlaveIf):
    """A trivial register-file slave with a fixed per-access delay."""

    def __init__(self, name, parent=None, sim=None, *, base, words=16, access_ns=10):
        super().__init__(name, parent=parent, sim=sim)
        self.base = base
        self.words = words
        self.access_ns = access_ns
        self.store = {}
        self.reads = 0
        self.writes = 0

    def get_low_add(self):
        return self.base

    def get_high_add(self):
        return self.base + self.words * 4 - 1

    def read(self, addr, count=1):
        yield ns(self.access_ns)
        self.reads += count
        index = (addr - self.base) // 4
        return [self.store.get(index + i, 0) for i in range(count)]

    def write(self, addr, data):
        yield ns(self.access_ns)
        words = [data] if isinstance(data, int) else list(data)
        index = (addr - self.base) // 4
        for i, word in enumerate(words):
            self.store[index + i] = word
        self.writes += len(words)
        return True


def small_tech(**overrides) -> ReconfigTechnology:
    """A fast-to-simulate reconfigurable technology for unit tests."""
    base = dict(
        name="unit",
        granularity="coarse",
        fabric_clock_hz=100e6,
        config_port_width_bits=32,
        config_port_freq_hz=100e6,
        bits_per_gate=8.0,
        context_slots=1,
        background_load=False,
        activation_overhead_cycles=2,
        speed_factor=1.0,
    )
    base.update(overrides)
    return ReconfigTechnology(**base)


class DrcfRig:
    """A self-contained DRCF test bench: bus + config memory + N dummies."""

    def __init__(
        self,
        n_contexts: int = 2,
        *,
        tech: Optional[ReconfigTechnology] = None,
        context_gates: int = 1000,
        protocol: str = "split",
        drcf_cls=Drcf,
        **drcf_kwargs,
    ):
        self.sim = Simulator()
        self.tech = tech or small_tech()
        self.bus = Bus("bus", sim=self.sim, clock_freq_hz=100e6, protocol=protocol)
        self.cfgmem = ConfigMemory(
            "cfg", sim=self.sim, base=0x100000, size_words=1 << 18
        )
        self.bus.register_slave(self.cfgmem)
        self.slaves: List[DummySlave] = []
        contexts = []
        size = self.tech.context_size_bytes(context_gates)
        for i in range(n_contexts):
            slave = DummySlave(f"s{i}", sim=self.sim, base=0x1000 * (i + 1))
            self.slaves.append(slave)
            params = ContextParameters(
                config_addr=0x100000 + i * ((size + 63) // 64) * 64,
                size_bytes=size,
            )
            contexts.append(
                Context(name=f"s{i}", module=slave, params=params, gates=context_gates)
            )
            self.cfgmem.register_context_region(f"s{i}", params.config_addr, size)
        self.drcf = drcf_cls(
            "drcf", sim=self.sim, contexts=contexts, tech=self.tech, **drcf_kwargs
        )
        self.drcf.mst_port.bind(self.bus)
        self.bus.register_slave(self.drcf)

    def addr(self, index: int, offset_words: int = 0) -> int:
        return self.slaves[index].base + 4 * offset_words

    def master_read(self, addr, count=1, master="cpu"):
        data = yield from self.bus.read(addr, count, master=master)
        return data

    def master_write(self, addr, data, master="cpu"):
        yield from self.bus.write(addr, data, master=master)
