"""Context descriptors and parameter derivation."""

import pytest

from repro.core import Context, ContextParameters, context_parameters_for
from repro.kernel import ZERO_TIME, us
from repro.tech import ASIC, VIRTEX2PRO
from tests.core.helpers import DummySlave, small_tech
from repro.kernel import Simulator


class TestContextParameters:
    def test_three_paper_parameters(self):
        params = ContextParameters(config_addr=0x1000, size_bytes=256, extra_delay=us(2))
        assert params.config_addr == 0x1000
        assert params.size_bytes == 256
        assert params.extra_delay == us(2)

    def test_defaults(self):
        assert ContextParameters(0, 1).extra_delay == ZERO_TIME

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextParameters(config_addr=-1, size_bytes=4)
        with pytest.raises(ValueError):
            ContextParameters(config_addr=0, size_bytes=0)

    def test_config_words_rounds_up(self):
        assert ContextParameters(0, 4).config_words(4) == 1
        assert ContextParameters(0, 5).config_words(4) == 2
        assert ContextParameters(0, 1).config_words(4) == 1


class TestContext:
    def _context(self, sim, **kwargs):
        slave = DummySlave("s", sim=sim, base=0x2000, words=8)
        defaults = dict(
            name="s", module=slave, params=ContextParameters(0, 64), gates=500
        )
        defaults.update(kwargs)
        return Context(**defaults)

    def test_address_range_from_module(self):
        sim = Simulator()
        ctx = self._context(sim)
        assert ctx.low_addr == 0x2000
        assert ctx.high_addr == 0x2000 + 8 * 4 - 1
        assert ctx.decodes(0x2000)
        assert ctx.decodes(0x201C)
        assert not ctx.decodes(0x2020)

    def test_gate_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            self._context(sim, gates=0)

    def test_repr_mentions_placement(self):
        sim = Simulator()
        text = repr(self._context(sim))
        assert "0x2000" in text and "64B" in text


class TestDerivation:
    def test_size_follows_bits_per_gate(self):
        tech = small_tech(bits_per_gate=8.0)
        params = context_parameters_for(tech, gates=1000, config_addr=0x0)
        assert params.size_bytes == 1000  # 8000 bits

    def test_extra_delay_defaults_to_tech_overhead(self):
        params = context_parameters_for(VIRTEX2PRO, gates=1000, config_addr=0)
        assert params.extra_delay == VIRTEX2PRO.reconfig_overhead

    def test_extra_delay_override(self):
        params = context_parameters_for(VIRTEX2PRO, 1000, 0, extra_delay=us(9))
        assert params.extra_delay == us(9)

    def test_asic_rejected(self):
        with pytest.raises(ValueError, match="empty context"):
            context_parameters_for(ASIC, 1000, 0)
