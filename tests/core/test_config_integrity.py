"""Configuration integrity: checksum verification + failure injection."""

import pytest

from repro.bus import region_checksum
from repro.core import ContextParameters
from repro.kernel import ProcessError, SimulationError
from tests.core.helpers import DrcfRig


def make_rig(verify=True, **kwargs):
    rig = DrcfRig(n_contexts=2, context_gates=1000, verify_config=verify, **kwargs)
    # DrcfRig builds contexts by hand; stamp the expected checksums the way
    # the transformation's post-elaboration hook does.
    for context in rig.drcf.contexts:
        context.params.checksum = rig.cfgmem.checksum_of(context.name)
    return rig


def access(rig, *indices):
    def body():
        for index in indices:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run()


class TestChecksumHelpers:
    def test_region_checksum_deterministic_and_sensitive(self):
        words = [1, 2, 3, 4]
        assert region_checksum(words) == region_checksum(list(words))
        assert region_checksum(words) != region_checksum([1, 2, 3, 5])
        assert region_checksum([]) != region_checksum([0])

    def test_config_memory_records_checksum_at_registration(self):
        rig = make_rig()
        base, size = rig.cfgmem.region_of("s0")
        words = max(1, -(-size // 4))
        expected = region_checksum(rig.cfgmem.peek(base, words))
        assert rig.cfgmem.checksum_of("s0") == expected

    def test_injection_validation(self):
        rig = make_rig()
        with pytest.raises(SimulationError, match="unknown context region"):
            rig.cfgmem.inject_transient_error("ghost")
        with pytest.raises(ValueError):
            rig.cfgmem.inject_transient_error("s0", 0)


class TestVerifiedFetch:
    def test_clean_fetch_passes_without_retries(self):
        rig = make_rig()
        access(rig, 0, 1)
        assert rig.drcf.stats.config_retries == 0
        assert rig.drcf.stats.fetch_misses == 2

    def test_transient_error_causes_one_refetch(self):
        rig = make_rig()
        rig.cfgmem.inject_transient_error("s0")
        access(rig, 0)
        stats = rig.drcf.stats
        assert stats.config_retries == 1
        assert stats.context("s0").fetch_retries == 1
        # The refetch doubled the configuration traffic on the bus.
        words = rig.drcf.contexts[0].params.config_words(4)
        assert rig.bus.monitor.words_by_tag("config") == 2 * words
        assert rig.cfgmem.injected_errors == 1

    def test_transient_error_costs_time_but_not_correctness(self):
        clean = make_rig()
        access(clean, 0)
        dirty = make_rig()
        dirty.cfgmem.inject_transient_error("s0")

        result = {}

        def body():
            yield from dirty.master_write(dirty.addr(0, 2), 123)
            data = yield from dirty.master_read(dirty.addr(0, 2))
            result["data"] = data

        dirty.sim.spawn("p", body)
        dirty.sim.run()
        assert result["data"] == [123]
        assert dirty.sim.now > clean.sim.now

    def test_persistent_corruption_raises_after_retries(self):
        rig = make_rig()
        rig.cfgmem.inject_transient_error("s0", n_bursts=50)  # every attempt fails

        def body():
            yield from rig.master_read(rig.addr(0))

        rig.sim.spawn("p", body)
        with pytest.raises(ProcessError, match="failed its checksum"):
            rig.sim.run()

    @pytest.mark.parametrize("max_retries", [1, 3])
    def test_retry_budget_is_exhausted_before_raising(self, max_retries):
        """The fetch retries exactly ``max_fetch_retries`` times, counting
        each retry, before giving up on persistent corruption."""
        rig = make_rig(max_fetch_retries=max_retries)
        rig.cfgmem.inject_transient_error("s0", n_bursts=100)

        def body():
            yield from rig.master_read(rig.addr(0))

        rig.sim.spawn("p", body)
        with pytest.raises(ProcessError, match="failed its checksum"):
            rig.sim.run()
        stats = rig.drcf.stats
        # First fetch + max_fetch_retries refetches, each failing its check.
        assert stats.config_retries == max_retries + 1
        assert stats.context("s0").fetch_retries == max_retries + 1
        words = rig.drcf.contexts[0].params.config_words(4)
        assert rig.bus.monitor.words_by_tag("config") == (max_retries + 1) * words

    def test_retry_budget_survives_matching_transient_corruption(self):
        """Corruption lasting exactly ``max_fetch_retries`` fetches recovers."""
        rig = make_rig(max_fetch_retries=3)
        # n_bursts counts burst reads; corrupt every burst of exactly the
        # first three full fetch attempts.
        words = rig.drcf.contexts[0].params.config_words(4)
        bursts_per_fetch = -(-words // rig.drcf.config_burst_words)
        rig.cfgmem.inject_transient_error("s0", n_bursts=3 * bursts_per_fetch)
        access(rig, 0)
        assert rig.drcf.stats.config_retries == 3
        assert rig.drcf.stats.context("s0").fetch_retries == 3

    def test_unverified_drcf_ignores_corruption(self):
        rig = make_rig(verify=False)
        rig.cfgmem.inject_transient_error("s0", n_bursts=50)
        access(rig, 0)  # completes: nothing checks the bitstream
        assert rig.drcf.stats.config_retries == 0

    def test_verify_without_checksum_is_noop(self):
        rig = DrcfRig(n_contexts=1, context_gates=500, verify_config=True)
        assert rig.drcf.contexts[0].params.checksum is None
        access(rig, 0)
        assert rig.drcf.stats.config_retries == 0


class TestTransformPropagation:
    def test_transform_stamps_checksums(self):
        from repro.apps import make_reconfigurable_netlist
        from repro.kernel import Simulator
        from repro.tech import MORPHOSYS

        netlist, info = make_reconfigurable_netlist(("fir", "xtea"), tech=MORPHOSYS)
        design = netlist.elaborate(Simulator())
        cfg = design["cfgmem"]
        for context in design["drcf1"].contexts:
            assert context.params.checksum == cfg.checksum_of(context.name)
