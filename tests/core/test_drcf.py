"""The DRCF component: construction, routing, serialization, busy handshake."""

import pytest

from repro.bus import BusSlaveIf
from repro.core import Context, ContextParameters, Drcf, LruPolicy
from repro.kernel import Module, SimulationError, Simulator, ZERO_TIME, ns, us
from repro.tech import ASIC
from tests.conftest import drive
from tests.core.helpers import DrcfRig, DummySlave, small_tech


class TestConstruction:
    def test_needs_contexts(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="at least one context"):
            Drcf("d", sim=sim, contexts=[], tech=small_tech())

    def test_rejects_non_reconfigurable_tech(self):
        sim = Simulator()
        slave = DummySlave("s", sim=sim, base=0x1000)
        ctx = Context("s", slave, ContextParameters(0, 64))
        with pytest.raises(SimulationError, match="not reconfigurable"):
            Drcf("d", sim=sim, contexts=[ctx], tech=ASIC)

    def test_rejects_overlapping_context_ranges(self):
        sim = Simulator()
        s1 = DummySlave("s1", sim=sim, base=0x1000, words=32)
        s2 = DummySlave("s2", sim=sim, base=0x1040, words=32)  # overlaps s1
        contexts = [
            Context("s1", s1, ContextParameters(0, 64)),
            Context("s2", s2, ContextParameters(64, 64)),
        ]
        with pytest.raises(SimulationError, match="overlapping"):
            Drcf("d", sim=sim, contexts=contexts, tech=small_tech())

    def test_union_address_range(self):
        rig = DrcfRig(n_contexts=3)
        assert rig.drcf.get_low_add() == rig.slaves[0].base
        assert rig.drcf.get_high_add() == rig.slaves[2].get_high_add()

    def test_implements_slave_interface(self):
        rig = DrcfRig()
        assert isinstance(rig.drcf, BusSlaveIf)

    def test_context_builders_instantiate_inside(self):
        sim = Simulator()

        def builder(drcf):
            slave = DummySlave("inner", parent=drcf, base=0x1000)
            return Context("inner", slave, ContextParameters(0, 64))

        drcf = Drcf("d", sim=sim, context_builders=[builder], tech=small_tech())
        assert drcf.child("inner").full_name == "d.inner"
        assert drcf.contexts[0].name == "inner"

    def test_area_slots_require_partial_reconfig(self):
        sim = Simulator()
        slave = DummySlave("s", sim=sim, base=0x1000)
        ctx = Context("s", slave, ContextParameters(0, 64))
        with pytest.raises(SimulationError, match="partial"):
            Drcf(
                "d", sim=sim, contexts=[ctx],
                tech=small_tech(partial_reconfig=False),
                use_area_slots=True,
            )

    def test_resource_introspection(self):
        rig = DrcfRig(n_contexts=2, context_gates=1000)
        assert rig.drcf.largest_context_gates() == 1000
        assert rig.drcf.total_config_bytes() == 2 * rig.tech.context_size_bytes(1000)


class TestRoutingAndSerialization:
    def test_concurrent_masters_serialize_on_fabric(self):
        rig = DrcfRig(n_contexts=2)
        done = {}

        def master(label, index):
            def body():
                yield from rig.master_read(rig.addr(index), master=label)
                done[label] = rig.sim.now.to_ns()

            return body

        rig.sim.spawn("m1", master("m1", 0))
        rig.sim.spawn("m2", master("m2", 1))
        rig.sim.run()
        assert len(done) == 2
        # Two different contexts back to back: two fetches happened.
        assert rig.drcf.stats.fetch_misses == 2

    def test_active_context_name(self):
        rig = DrcfRig(n_contexts=2)
        assert rig.drcf.active_context_name is None

        def body():
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert rig.drcf.active_context_name == "s1"

    def test_write_returns_true(self):
        rig = DrcfRig()

        def body():
            ok = yield from rig.drcf.write(rig.addr(0), 5)
            return ok

        box = drive(rig.sim, body)
        rig.sim.run()
        assert box.value is True


class TestBusyHandshake:
    """A context computing asynchronously must not be switched away."""

    class BusySlave(DummySlave):
        """Goes busy for a fixed time after each write."""

        def __init__(self, *args, busy_ns=500, **kwargs):
            super().__init__(*args, **kwargs)
            self.busy = False
            self.idle_event = self.event("idle")
            self.busy_ns = busy_ns
            self.add_thread(self._work, name="work", daemon=True)
            self._kick = self.event("kick")

        def write(self, addr, data):
            result = yield from super().write(addr, data)
            self.busy = True
            self._kick.notify()
            return result

        def _work(self):
            while True:
                yield self._kick
                yield ns(self.busy_ns)
                self.busy = False
                self.idle_event.notify()

    def test_switch_waits_for_idle(self):
        rig = DrcfRig(n_contexts=2)
        busy = self.BusySlave("busy", sim=rig.sim, base=0x9000, busy_ns=2000)
        # Rewire context 0 onto the busy slave (its range follows the module).
        rig.drcf.contexts[0].module = busy
        switch_started = {}

        def body():
            yield from rig.master_write(0x9000, 1)  # context s0 active + busy
            t0 = rig.sim.now
            yield from rig.master_read(rig.addr(1))  # forces switch
            switch_started["elapsed"] = (rig.sim.now - t0).to_ns()

        rig.sim.spawn("p", body)
        rig.sim.run()
        # The switch had to wait out the 2000 ns busy period.
        assert switch_started["elapsed"] >= 2000.0

    def test_compute_sink_installed_when_supported(self):
        sim = Simulator()

        class SinkSlave(DummySlave):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.compute_sink = None

        slave = SinkSlave("s", sim=sim, base=0x1000)
        ctx = Context("s", slave, ContextParameters(0, 64))
        drcf = Drcf("d", sim=sim, contexts=[ctx], tech=small_tech())
        assert slave.compute_sink is not None
        slave.compute_sink(ZERO_TIME, us(1))
        assert drcf.stats.context("s").active_time == us(1)


class TestPrefetchApi:
    def test_prefetch_requires_background_load(self):
        rig = DrcfRig(n_contexts=2)  # default tech: no background load
        assert rig.drcf.prefetch("s1") is None

    def test_prefetch_unknown_context(self):
        rig = DrcfRig()
        with pytest.raises(KeyError, match="no context named"):
            rig.drcf.prefetch("ghost")

    def test_prefetch_loads_into_idle_slot(self):
        tech = small_tech(context_slots=2, background_load=True)
        rig = DrcfRig(n_contexts=2, tech=tech)

        def body():
            yield from rig.master_read(rig.addr(0))
            done = rig.drcf.prefetch("s1")
            assert done is not None
            yield done
            t0 = rig.sim.now
            yield from rig.master_read(rig.addr(1))
            return (rig.sim.now - t0).to_ns()

        box = drive(rig.sim, body)
        rig.sim.run()
        stats = rig.drcf.stats
        assert stats.background_loads == 1
        assert stats.prefetch_hits == 1
        assert stats.fetch_misses == 1  # only the initial s0 load
        # The switch to the prefetched context was cheap (no fetch).
        assert box.value < 1000.0
