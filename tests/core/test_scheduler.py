"""The Section 5.3 context scheduler: the five protocol steps and timing."""

import pytest

from repro.kernel import ZERO_TIME, ns, us
from tests.conftest import drive
from tests.core.helpers import DrcfRig, small_tech


class TestStep1Decode:
    def test_call_routed_to_correct_context(self):
        rig = DrcfRig(n_contexts=2)

        def body():
            yield from rig.master_write(rig.addr(1, 0), 77)
            data = yield from rig.master_read(rig.addr(1, 0))
            return data

        box = drive(rig.sim, body)
        rig.sim.run()
        assert box.value == [77]
        assert rig.slaves[1].writes == 1
        assert rig.slaves[0].writes == 0

    def test_hole_between_contexts_rejected(self):
        rig = DrcfRig(n_contexts=2)

        def body():
            # 0x1fff+1 .. 0x2000-1 region between contexts is a hole.
            yield from rig.master_read(rig.addr(0) + 16 * 4 + 0x100)

        rig.sim.spawn("p", body)
        with pytest.raises(Exception, match="not decoded by any context"):
            rig.sim.run()


class TestStep2ForwardWhenActive:
    def test_second_call_to_active_context_has_no_switch(self):
        rig = DrcfRig(n_contexts=2)

        def body():
            yield from rig.master_read(rig.addr(0))
            t1 = rig.sim.now
            yield from rig.master_read(rig.addr(0))
            return (rig.sim.now - t1).to_ns()

        box = drive(rig.sim, body)
        rig.sim.run()
        stats = rig.drcf.stats
        assert stats.total_switches == 1  # only the initial load
        assert stats.context("s0").calls == 2
        # Second call: bus (split: ~addr+req+resp+word) + 10ns slave only.
        assert box.value < 200.0


class TestStep3And4SwitchSuspendsFetch:
    def test_switch_fetches_bitstream_from_config_memory(self):
        rig = DrcfRig(n_contexts=2, context_gates=1000)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        words = rig.tech.context_size_bytes(1000) // 4
        assert rig.bus.monitor.words_by_tag("config") == 2 * words
        # Fetches targeted the right regions.
        config_txns = [t for t in rig.bus.monitor.transactions if t.has_tag("config")]
        assert all(rig.cfgmem.context_for_address(t.addr) in ("s0", "s1") for t in config_txns)
        assert any(t.has_tag("s1") for t in config_txns)

    def test_call_suspended_until_switch_completes(self):
        rig = DrcfRig(n_contexts=2, context_gates=4000)
        timeline = {}

        def body():
            yield from rig.master_read(rig.addr(0))
            timeline["before"] = rig.sim.now
            yield from rig.master_read(rig.addr(1))
            timeline["after"] = rig.sim.now

        rig.sim.spawn("p", body)
        rig.sim.run()
        switch_time = (timeline["after"] - timeline["before"]).to_ns()
        # 4000 gates * 8 bits = 4000 bytes = 1000 words at >=10ns each.
        assert switch_time > 9_000

    def test_extra_delay_parameter_applied(self):
        rig = DrcfRig(n_contexts=1)
        rig.drcf.contexts[0].params.extra_delay = us(50)

        def body():
            yield from rig.master_read(rig.addr(0))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert rig.drcf.stats.total_reconfig_time >= us(50)

    def test_port_bound_load_time(self):
        # A very slow configuration port dominates the bus transfer time.
        slow = small_tech(config_port_width_bits=1, config_port_freq_hz=1e6)
        rig = DrcfRig(n_contexts=1, tech=slow, context_gates=1000)

        def body():
            yield from rig.master_read(rig.addr(0))

        rig.sim.spawn("p", body)
        rig.sim.run()
        port_time = slow.raw_load_time(slow.context_size_bytes(1000) * 8)
        assert rig.drcf.stats.total_reconfig_time >= port_time


class TestStep5Instrumentation:
    def test_active_and_reconfig_time_tracked(self):
        rig = DrcfRig(n_contexts=2)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        stats = rig.drcf.stats
        assert stats.context("s0").calls == 1
        assert stats.context("s1").calls == 2
        assert stats.context("s0").reconfigurations == 1
        assert stats.context("s1").reconfigurations == 1
        assert stats.total_active_time > ZERO_TIME
        assert stats.total_reconfig_time > ZERO_TIME
        # Call wait time accumulated for the switching calls.
        assert stats.context("s1").call_wait_time > ZERO_TIME

    def test_switch_history_records_order(self):
        rig = DrcfRig(n_contexts=3)

        def body():
            for index in (0, 1, 0, 2):
                yield from rig.master_read(rig.addr(index))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert rig.drcf.scheduler.switch_history == ["s0", "s1", "s0", "s2"]

    def test_timeline_has_active_and_reconfig_tracks(self):
        rig = DrcfRig(n_contexts=2)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        tracks = {row[2] for row in rig.drcf.stats.timeline.rows}
        assert {"active", "reconfig"} <= tracks


class TestMultiSlot:
    def test_resident_context_avoids_refetch(self):
        rig = DrcfRig(n_contexts=2, tech=small_tech(context_slots=2))

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))
            yield from rig.master_read(rig.addr(0))  # still resident

        rig.sim.spawn("p", body)
        rig.sim.run()
        stats = rig.drcf.stats
        assert stats.total_switches == 3
        assert stats.fetch_misses == 2
        assert stats.resident_hits == 1
        assert set(rig.drcf.resident_context_names()) == {"s0", "s1"}

    def test_thrash_with_single_slot(self):
        rig = DrcfRig(n_contexts=2, tech=small_tech(context_slots=1))

        def body():
            for index in (0, 1, 0, 1):
                yield from rig.master_read(rig.addr(index))

        rig.sim.spawn("p", body)
        rig.sim.run()
        assert rig.drcf.stats.fetch_misses == 4
        assert rig.drcf.stats.resident_hits == 0

    def test_activation_time_charged_on_resident_switch(self):
        tech = small_tech(context_slots=2, activation_overhead_cycles=100)
        rig = DrcfRig(n_contexts=2, tech=tech)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))
            t0 = rig.sim.now
            yield from rig.master_read(rig.addr(0))  # resident activation
            return (rig.sim.now - t0).to_ns()

        box = drive(rig.sim, body)
        rig.sim.run()
        assert box.value >= 1000.0  # 100 cycles @ 10 ns
