"""Task graphs: DAG construction, execution order, profiling."""

import pytest

from repro.bus import Bus, Memory
from repro.cpu import Processor, TaskGraph, TaskGraphExecutor
from repro.kernel import SimulationError, Simulator, us


def make_cpu(sim, name="cpu"):
    bus = Bus(f"{name}_bus", sim=sim, clock_freq_hz=100e6)
    mem = Memory(f"{name}_mem", sim=sim, base=0, size_words=64)
    bus.register_slave(mem)
    cpu = Processor(name, sim=sim, clock_freq_hz=100e6)
    cpu.mst_port.bind(bus)
    return cpu


def compute_task(cycles, log=None, label=""):
    def task(cpu):
        yield from cpu.compute(cycles)
        if log is not None:
            log.append(label)

    return task


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        graph = TaskGraph("g")
        graph.add("a", compute_task(1))
        with pytest.raises(SimulationError, match="duplicate"):
            graph.add("a", compute_task(1))

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph("g")
        with pytest.raises(SimulationError, match="unknown"):
            graph.add("a", compute_task(1), deps=["ghost"])

    def test_topological_order(self):
        graph = TaskGraph("g")
        graph.add("a", compute_task(1))
        graph.add("b", compute_task(1), deps=["a"])
        graph.add("c", compute_task(1), deps=["a"])
        graph.add("d", compute_task(1), deps=["b", "c"])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_critical_path(self):
        graph = TaskGraph("g")
        graph.add("a", compute_task(1))
        graph.add("b", compute_task(1), deps=["a"])
        graph.add("c", compute_task(1), deps=["a"])
        graph.add("d", compute_task(1), deps=["b", "c"])
        weights = {"a": 1.0, "b": 10.0, "c": 1.0, "d": 1.0}
        assert graph.critical_path(weights) == ["a", "b", "d"]


class TestExecution:
    def test_dependencies_respected(self, sim):
        cpu = make_cpu(sim)
        log = []
        graph = TaskGraph("g")
        graph.add("a", compute_task(100, log, "a"))
        graph.add("b", compute_task(100, log, "b"), deps=["a"])
        graph.add("c", compute_task(100, log, "c"), deps=["b"])
        executor = TaskGraphExecutor(graph, [cpu])
        executor.start()
        sim.run()
        assert log == ["a", "b", "c"]
        assert executor.makespan() == us(3)

    def test_single_cpu_serializes_independent_tasks(self, sim):
        cpu = make_cpu(sim)
        graph = TaskGraph("g")
        graph.add("a", compute_task(100))
        graph.add("b", compute_task(100))
        executor = TaskGraphExecutor(graph, [cpu])
        executor.start()
        sim.run()
        assert executor.makespan() == us(2)

    def test_two_cpus_parallelize(self, sim):
        cpu1, cpu2 = make_cpu(sim, "cpu1"), make_cpu(sim, "cpu2")
        graph = TaskGraph("g")
        graph.add("a", compute_task(100), affinity=0)
        graph.add("b", compute_task(100), affinity=1)
        executor = TaskGraphExecutor(graph, [cpu1, cpu2])
        executor.start()
        sim.run()
        assert executor.makespan() == us(1)

    def test_profile_reports_durations(self, sim):
        cpu = make_cpu(sim)
        graph = TaskGraph("g")
        graph.add("a", compute_task(100))
        graph.add("b", compute_task(300), deps=["a"])
        executor = TaskGraphExecutor(graph, [cpu])
        executor.start()
        sim.run()
        profile = executor.profile()
        assert profile["a"] == 1000.0
        assert profile["b"] == 3000.0

    def test_makespan_before_completion_rejected(self, sim):
        cpu = make_cpu(sim)
        graph = TaskGraph("g")
        graph.add("a", compute_task(100))
        executor = TaskGraphExecutor(graph, [cpu])
        with pytest.raises(SimulationError, match="incomplete"):
            executor.makespan()

    def test_no_processor_rejected(self):
        graph = TaskGraph("g")
        with pytest.raises(SimulationError, match="at least one"):
            TaskGraphExecutor(graph, [])

    def test_diamond_dependency_with_zero_time_entry(self, sim):
        # Regression: a dependency finishing at t=0 before the dependent
        # process first waits must not be lost.
        cpu = make_cpu(sim)
        log = []
        graph = TaskGraph("g")
        graph.add("fast", compute_task(0, log, "fast"))
        graph.add("after", compute_task(100, log, "after"), deps=["fast"])
        executor = TaskGraphExecutor(graph, [cpu])
        executor.start()
        sim.run()
        assert log == ["fast", "after"]
