"""Traffic generator: reproducibility, bounds, load shaping."""

import pytest

from repro.bus import Bus, Memory
from repro.cpu import TrafficGenerator
from repro.kernel import Simulator, us


def make_system(sim, **gen_kwargs):
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    mem = Memory("mem", sim=sim, base=0, size_words=1024)
    bus.register_slave(mem)
    gen = TrafficGenerator(
        "gen",
        sim=sim,
        base=0,
        span_bytes=1024 * 4,
        **gen_kwargs,
    )
    gen.mst_port.bind(bus)
    return bus, gen


class TestReproducibility:
    def _trace(self, seed):
        sim = Simulator()
        bus, gen = make_system(sim, seed=seed, n_transactions=20)
        sim.run()
        return [(t.kind, t.addr, t.words) for t in bus.monitor.transactions]

    def test_same_seed_same_stream(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seed_different_stream(self):
        assert self._trace(7) != self._trace(8)


class TestBehaviour:
    def test_transaction_count_honoured(self, sim):
        bus, gen = make_system(sim, n_transactions=15)
        sim.run()
        assert gen.issued == 15
        assert bus.monitor.transaction_count == 15

    def test_all_traffic_tagged_background(self, sim):
        bus, _ = make_system(sim, n_transactions=10)
        sim.run()
        assert bus.monitor.words_by_tag("background") == bus.monitor.total_words

    def test_read_fraction_zero_means_all_writes(self, sim):
        bus, _ = make_system(sim, n_transactions=10, read_fraction=0.0)
        sim.run()
        assert all(t.kind == "write" for t in bus.monitor.transactions)

    def test_gap_zero_saturates_bus(self, sim):
        bus, _ = make_system(sim, n_transactions=50, gap_cycles=0)
        sim.run()
        assert bus.monitor.utilization(sim.now) > 0.9

    def test_larger_gap_lowers_utilization(self):
        utils = []
        for gap in (0, 200):
            sim = Simulator()
            bus, _ = make_system(sim, n_transactions=50, gap_cycles=gap, seed=3)
            sim.run()
            utils.append(bus.monitor.utilization(sim.now))
        assert utils[1] < utils[0]

    def test_addresses_stay_in_window(self, sim):
        bus, _ = make_system(sim, n_transactions=40, burst_words=8)
        sim.run()
        for t in bus.monitor.transactions:
            assert 0 <= t.addr <= 1024 * 4 - 8 * 4

    def test_span_too_small_rejected(self, sim):
        with pytest.raises(ValueError, match="span"):
            TrafficGenerator(
                "g2", sim=sim, base=0, span_bytes=8, burst_words=4
            )

    def test_unbounded_generator_is_daemon(self, sim):
        bus, gen = make_system(sim, n_transactions=None)
        sim.run(until=us(5))
        assert gen.issued > 0
        # Marked daemon so diagnose() ignores it.
        procs = [p for p in sim._processes if p.name.endswith("gen.gen")]
        assert procs and procs[0].daemon
