"""Processor model: compute timing, bus services, polling, task execution."""

import pytest

from repro.bus import Bus, Memory
from repro.cpu import Processor
from repro.kernel import SimulationError, Simulator, ns, us
from tests.conftest import drive


def make_system(sim, cpu_clock=200e6):
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    mem = Memory("mem", sim=sim, base=0, size_words=256, clock_freq_hz=100e6)
    bus.register_slave(mem)
    cpu = Processor("cpu", sim=sim, clock_freq_hz=cpu_clock)
    cpu.mst_port.bind(bus)
    return bus, mem, cpu


class TestComputeTiming:
    def test_compute_advances_by_cycles(self, sim):
        _, _, cpu = make_system(sim)

        def task(c):
            yield from c.compute(200)  # 200 cycles @ 200 MHz = 1 us

        cpu.run_task(task)
        sim.run()
        assert sim.now == us(1)
        assert cpu.compute_cycles == 200

    def test_zero_cycles_is_free(self, sim):
        _, _, cpu = make_system(sim)

        def task(c):
            yield from c.compute(0)

        cpu.run_task(task)
        sim.run()
        assert sim.now.to_ns() == 0.0

    def test_negative_cycles_rejected(self, sim):
        _, _, cpu = make_system(sim)

        def task(c):
            yield from c.compute(-1)

        cpu.run_task(task)
        with pytest.raises(Exception, match="non-negative"):
            sim.run()


class TestBusServices:
    def test_read_write_roundtrip(self, sim):
        _, mem, cpu = make_system(sim)
        out = []

        def task(c):
            yield from c.write(0x10, [1, 2, 3])
            data = yield from c.read(0x10, 3)
            out.append(data)
            word = yield from c.read_word(0x14)
            out.append(word)

        cpu.run_task(task)
        sim.run()
        assert out == [[1, 2, 3], 2]
        assert cpu.bus_reads == 4
        assert cpu.bus_writes == 3

    def test_poll_until_match(self, sim):
        _, mem, cpu = make_system(sim)
        result = []

        def setter():
            yield us(1)
            mem.poke(0x20, [0x1])

        def task(c):
            word = yield from c.poll(0x20, mask=0x1, expect=0x1, interval_cycles=8)
            result.append((word, sim.now.to_us()))

        sim.spawn("setter", setter)
        cpu.run_task(task)
        sim.run()
        assert result[0][0] == 1
        assert result[0][1] >= 1.0

    def test_poll_gives_up(self, sim):
        _, _, cpu = make_system(sim)

        def task(c):
            yield from c.poll(0x20, mask=0x1, expect=0x1, max_polls=3)

        cpu.run_task(task)
        with pytest.raises(Exception, match="poll"):
            sim.run()


class TestTaskExecution:
    def test_run_sequence_ordering(self, sim):
        _, _, cpu = make_system(sim)
        order = []

        def make(label, cycles):
            def task(c):
                yield from c.compute(cycles)
                order.append(label)

            task.__name__ = label
            return task

        cpu.run_sequence([make("a", 10), make("b", 10)])
        sim.run()
        assert order == ["a", "b"]
        assert cpu.tasks_completed == 2

    def test_completion_times_recorded(self, sim):
        _, _, cpu = make_system(sim)

        def my_task(c):
            yield from c.compute(200)

        cpu.run_task(my_task)
        sim.run()
        assert cpu.task_completion_time("my_task") == us(1)
        assert "my_task" in cpu.completion_times

    def test_wait_event_service(self, sim):
        _, _, cpu = make_system(sim)
        ev = sim.event("irq")
        woke = []

        def task(c):
            yield from c.wait_event(ev)
            woke.append(sim.now.to_ns())

        cpu.run_task(task)
        ev.notify(ns(15))
        sim.run()
        assert woke == [15.0]

    def test_delay_service(self, sim):
        _, _, cpu = make_system(sim)

        def task(c):
            yield from c.delay(ns(7))

        cpu.run_task(task)
        sim.run()
        assert sim.now == ns(7)
