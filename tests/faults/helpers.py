"""Shared builders for fault-injection tests: a hooked DRCF rig."""

from __future__ import annotations

from types import SimpleNamespace

from tests.core.helpers import DrcfRig

#: The address-map shim FaultInjector.attach expects from a SoC template.
RIG_INFO = SimpleNamespace(drcf_name="drcf", config_memory_name="cfg")


def make_rig(**drcf_kwargs) -> DrcfRig:
    """A two-context DRCF rig prepared for fault injection.

    Stamps the expected checksums (as the transformation's
    post-elaboration hook does) and points the DRCF at its configuration
    memory so scrubbing can repair.
    """
    rig = DrcfRig(n_contexts=2, context_gates=1000, **drcf_kwargs)
    for context in rig.drcf.contexts:
        context.params.checksum = rig.cfgmem.checksum_of(context.name)
    rig.drcf.config_memory = rig.cfgmem
    return rig


def rig_design(rig: DrcfRig) -> dict:
    """Design mapping for FaultInjector.attach (name -> component)."""
    return {"drcf": rig.drcf, "cfg": rig.cfgmem}


def access(rig: DrcfRig, *indices, delay_us: float = 0.0, until=None):
    """Drive one master read per context index, then run the simulation."""
    from repro.kernel import us

    def body():
        if delay_us:
            yield us(delay_us)
        for index in indices:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run(until=until)
