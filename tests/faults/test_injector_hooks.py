"""FaultInjector: each fault kind applied through the core-layer hooks,
plus the zero-overhead guarantee for disarmed designs and the error paths."""

from types import SimpleNamespace

import pytest

from repro.bus import Memory
from repro.core import Drcf
from repro.faults import FaultInjector, FaultSpec
from repro.kernel import SimulationError, us
from tests.faults.helpers import RIG_INFO, access, make_rig, rig_design


def attach(rig, *specs, seed=7):
    injector = FaultInjector(seed=seed)
    for spec in specs:
        injector.arm(spec)
    injector.attach(rig.sim, rig_design(rig), RIG_INFO)
    return injector


class TestDisarmedOverhead:
    def test_hook_attributes_default_to_none(self):
        assert Memory.fault_hook is None
        rig = make_rig()
        assert rig.drcf.fault_hook is None
        assert rig.cfgmem.fault_hook is None
        assert rig.drcf.scheduler.fault_hook is None

    def test_memory_hook_is_a_class_attribute(self):
        # The disarmed cost on the memory read path is one `is None` test;
        # the attribute lives on the class so instances pay nothing extra.
        assert "fault_hook" in vars(Memory)
        assert vars(Memory)["fault_hook"] is None

    def test_attached_but_empty_injector_changes_nothing(self):
        clean = make_rig()
        access(clean, 0, 1, 0)
        hooked = make_rig()
        injector = attach(hooked)  # no specs armed
        access(hooked, 0, 1, 0)
        assert hooked.sim.now == clean.sim.now
        assert hooked.drcf.stats.fetch_misses == clean.drcf.stats.fetch_misses
        assert hooked.drcf.stats.config_retries == 0
        assert injector.events == []
        assert injector.pending == 0


class TestBitflip:
    def test_timed_upset_corrupts_the_stored_region(self):
        rig = make_rig()
        injector = attach(rig, FaultSpec("bitflip", "s0", at_ns=0.0, n_bits=2))
        access(rig, 0, delay_us=1.0)  # flip lands before the fetch
        assert not rig.cfgmem.region_is_clean("s0")
        assert rig.cfgmem.injected_errors == 2
        # Verification is off, but the model still knows the truth.
        assert rig.drcf.loaded_corrupted("s0") is True
        assert len(injector.events) == 1
        assert injector.pending == 0

    def test_same_seed_flips_same_bits(self):
        corrupted = []
        for _ in range(2):
            rig = make_rig()
            attach(rig, FaultSpec("bitflip", "s0", at_ns=0.0, n_bits=3), seed=11)
            access(rig, 0, delay_us=1.0)
            base, size = rig.cfgmem.region_of("s0")
            corrupted.append(rig.cfgmem.peek(base, max(1, size // 4)))
        assert corrupted[0] == corrupted[1]


class TestTruncate:
    def test_garbles_one_fetch_then_clears(self):
        rig = make_rig()
        injector = attach(rig, FaultSpec("truncate", "s0", at_ns=0.0))
        # s1 evicts s0 (single slot), so the third access refetches s0.
        access(rig, 0, 1, 0)
        assert len(injector.events) == 1
        # The refetch saw clean data: transient by construction.
        assert rig.drcf.loaded_corrupted("s0") is False
        # The stored memory itself was never touched.
        assert rig.cfgmem.region_is_clean("s0")

    def test_first_fetch_is_marked_corrupted(self):
        rig = make_rig()
        attach(rig, FaultSpec("truncate", "s0", at_ns=0.0))
        access(rig, 0)
        assert rig.drcf.loaded_corrupted("s0") is True


class TestBusTransient:
    def test_flips_one_bit_of_a_target_burst(self):
        rig = make_rig()
        injector = attach(rig, FaultSpec("bus_transient", "s0", at_ns=0.0))
        access(rig, 0, 1)
        assert rig.drcf.loaded_corrupted("s0") is True
        # Only bursts over the target's region are touched.
        assert rig.drcf.loaded_corrupted("s1") is False
        assert rig.cfgmem.region_is_clean("s0")  # in flight, not in store
        assert len(injector.events) == 1
        assert injector.pending == 0

    def test_memory_without_regions_passes_through(self):
        injector = FaultInjector(seed=7)
        injector.arm(FaultSpec("bus_transient", "s0", at_ns=0.0))
        data = [1, 2, 3]
        assert injector.on_memory_read(SimpleNamespace(), 0x0, 3, data) == data


class TestStuck:
    def test_stalls_exactly_one_fetch(self):
        clean = make_rig()
        access(clean, 0, 1, 0)
        dirty = make_rig()
        injector = attach(dirty, FaultSpec("stuck", "s0", at_ns=0.0, stall_us=100.0))
        access(dirty, 0, 1, 0)
        # One wedge of 100us, then (one-shot) everything else is identical.
        assert dirty.sim.now - clean.sim.now == us(100)
        assert injector.pending == 0
        # No data harm: a stall delays, it does not corrupt.
        assert dirty.drcf.loaded_corrupted("s0") is False


class TestObservation:
    def test_switch_log_records_the_schedule(self):
        rig = make_rig()
        injector = attach(rig)
        access(rig, 0, 1)
        assert [name for _, name in injector.switch_log] == ["s0", "s1"]


class TestErrorPaths:
    def test_arm_after_attach_is_rejected(self):
        rig = make_rig()
        injector = attach(rig)
        with pytest.raises(SimulationError, match="before attach"):
            injector.arm(FaultSpec("stuck", "s0", at_ns=0.0))

    def test_double_attach_is_rejected(self):
        rig = make_rig()
        injector = attach(rig)
        with pytest.raises(SimulationError, match="already attached"):
            injector.attach(rig.sim, rig_design(rig), RIG_INFO)

    def test_unknown_target_is_rejected_at_attach(self):
        rig = make_rig()
        injector = FaultInjector(seed=7)
        injector.arm(FaultSpec("bitflip", "ghost", at_ns=0.0))
        with pytest.raises(SimulationError, match="unknown context"):
            injector.attach(rig.sim, rig_design(rig), RIG_INFO)
        # Validation runs before any hook is set: the design stays disarmed.
        assert rig.drcf.fault_hook is None
        assert rig.cfgmem.fault_hook is None


def test_core_layer_never_imports_the_faults_package():
    # Layering guard: injection is opt-in via hook attributes, so the core
    # layer (and the bus layer it sits on) must not import repro.faults.
    import inspect

    import repro.bus.memory
    import repro.core.drcf
    import repro.core.scheduler

    for module in (repro.core.drcf, repro.core.scheduler, repro.bus.memory):
        source = inspect.getsource(module)
        assert "from ..faults" not in source
        assert "import repro.faults" not in source
    assert Drcf.FETCHES_CONFIG_OVER_BUS is True
