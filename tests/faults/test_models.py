"""FaultSpec validation and serialization."""

import pytest

from repro.faults import FAULT_KINDS, FaultSpec


class TestFaultSpec:
    def test_kinds_cover_the_configuration_path(self):
        assert FAULT_KINDS == ("bitflip", "truncate", "bus_transient", "stuck")

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_roundtrips_through_dict(self, kind):
        spec = FaultSpec(
            kind=kind,
            target="fft",
            at_ns=1234.5,
            n_bits=3,
            drop_fraction=0.25,
            n_bursts=2,
            stall_us=100.0,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_describe_names_kind_and_target(self, kind):
        text = FaultSpec(kind=kind, target="fir", at_ns=0.0).describe()
        assert kind in text
        assert "fir" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="gamma_ray"),
            dict(target=""),
            dict(at_ns=-1.0),
            dict(n_bits=0),
            dict(drop_fraction=0.0),
            dict(drop_fraction=1.5),
            dict(n_bursts=0),
            dict(stall_us=0.0),
        ],
    )
    def test_rejects_malformed_specs(self, kwargs):
        base = dict(kind="bitflip", target="fir", at_ns=0.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            FaultSpec(**base)

    def test_full_drop_fraction_is_allowed(self):
        FaultSpec(kind="truncate", target="fir", at_ns=0.0, drop_fraction=1.0)

    def test_specs_are_frozen(self):
        spec = FaultSpec(kind="stuck", target="fir", at_ns=0.0)
        with pytest.raises(AttributeError):
            spec.target = "fft"
