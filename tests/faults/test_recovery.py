"""DRCF recovery policies exercised by injected faults.

The retry-with-backoff case is the headline: a transient truncation is
detected by readback verification, refetched after a backoff, and the
whole intervention shows up in the DRCF stats (retry count, recovery
time) — the instrumented recovery the campaign engine classifies as a
``recovered`` outcome.
"""

import pytest

from repro.core import (
    FULL_RECOVERY,
    NO_RECOVERY,
    RECOVERY_PRESETS,
    RETRY_BACKOFF,
    VERIFY_ONLY,
    RecoveryPolicy,
    recovery_preset,
)
from repro.faults import FaultInjector, FaultSpec
from repro.kernel import ZERO_TIME, us
from tests.faults.helpers import RIG_INFO, access, make_rig, rig_design


def attach(rig, *specs, seed=7):
    injector = FaultInjector(seed=seed)
    for spec in specs:
        injector.arm(spec)
    injector.attach(rig.sim, rig_design(rig), RIG_INFO)
    return injector


class TestPolicy:
    def test_presets_are_registered(self):
        assert set(RECOVERY_PRESETS) == {"none", "verify", "retry", "full"}
        assert recovery_preset("retry") is RETRY_BACKOFF
        assert recovery_preset("none") is NO_RECOVERY
        with pytest.raises(KeyError, match="unknown recovery preset"):
            recovery_preset("heroic")

    def test_preset_shapes(self):
        assert not NO_RECOVERY.verify
        assert VERIFY_ONLY.verify and VERIFY_ONLY.max_retries == 0
        assert RETRY_BACKOFF.max_retries == 3
        assert FULL_RECOVERY.scrub_interval is not None
        assert FULL_RECOVERY.fetch_timeout is not None

    def test_backoff_is_exponential(self):
        policy = RecoveryPolicy(backoff=us(2), backoff_factor=2.0)
        assert policy.backoff_delay(1) == us(2)
        assert policy.backoff_delay(2) == us(4)
        assert policy.backoff_delay(3) == us(8)
        assert RecoveryPolicy().backoff_delay(5) == ZERO_TIME

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.0)

    def test_with_overrides(self):
        tweaked = RETRY_BACKOFF.with_overrides(max_retries=7)
        assert tweaked.max_retries == 7
        assert tweaked.verify is RETRY_BACKOFF.verify


class TestRetryBackoff:
    def test_transient_truncation_is_recovered_and_instrumented(self):
        clean = make_rig(recovery=RETRY_BACKOFF)
        access(clean, 0)
        rig = make_rig(recovery=RETRY_BACKOFF)
        attach(rig, FaultSpec("truncate", "s0", at_ns=0.0))
        access(rig, 0)
        stats = rig.drcf.stats
        assert stats.config_retries == 1
        assert stats.recovery_actions >= 1
        assert stats.total_recovery_time > ZERO_TIME
        # The refetch came back clean: no silent corruption.
        assert rig.drcf.loaded_corrupted("s0") is False
        # The intervention cost real simulated time (backoff + refetch).
        assert rig.sim.now - clean.sim.now >= us(2)

    def test_bus_transient_is_recovered(self):
        rig = make_rig(recovery=RETRY_BACKOFF)
        attach(rig, FaultSpec("bus_transient", "s0", at_ns=0.0, n_bursts=1))
        access(rig, 0)
        assert rig.drcf.stats.config_retries == 1
        assert rig.drcf.loaded_corrupted("s0") is False

    def test_persistent_bitflip_defeats_retry_and_falls_back(self):
        # A configuration-memory upset corrupts the *store*: every refetch
        # reads the same damaged words, so the retry budget runs out and
        # the DRCF degrades instead of aborting (fallback_to_resident).
        rig = make_rig(recovery=RETRY_BACKOFF)
        attach(rig, FaultSpec("bitflip", "s0", at_ns=0.0, n_bits=1))
        access(rig, 0, delay_us=1.0)
        stats = rig.drcf.stats
        assert stats.config_retries == RETRY_BACKOFF.max_retries + 1
        assert stats.fallbacks == 1
        assert rig.drcf.loaded_corrupted("s0") is True


class TestVerifyOnly:
    def test_detection_without_retry_degrades(self):
        rig = make_rig(recovery=VERIFY_ONLY)
        attach(rig, FaultSpec("truncate", "s0", at_ns=0.0))
        access(rig, 0)  # completes: fallback, not SimulationError
        stats = rig.drcf.stats
        assert stats.config_retries == 1
        assert stats.fallbacks == 1
        assert rig.drcf.loaded_corrupted("s0") is True


class TestNoRecovery:
    def test_corruption_goes_unnoticed_by_the_hardware(self):
        rig = make_rig(recovery=NO_RECOVERY)
        attach(rig, FaultSpec("truncate", "s0", at_ns=0.0))
        access(rig, 0)
        stats = rig.drcf.stats
        assert stats.config_retries == 0
        assert stats.recovery_actions == 0
        # ... but the model-level ground truth still knows.
        assert rig.drcf.loaded_corrupted("s0") is True


class TestFullRecovery:
    def test_scrubbing_repairs_a_configuration_upset(self):
        rig = make_rig(recovery=FULL_RECOVERY)
        rig.cfgmem.corrupt_region("s0", [3, 17])
        assert not rig.cfgmem.region_is_clean("s0")
        # Wait three scrub periods, then use the context; the scrubber's
        # daemon keeps the event queue alive, so bound the run.
        access(rig, 0, delay_us=170.0, until=us(1000))
        stats = rig.drcf.stats
        assert stats.scrub_repairs >= 1
        assert rig.cfgmem.region_is_clean("s0")
        # The fetch after the repair loads a clean image first try.
        assert stats.config_retries == 0
        assert rig.drcf.loaded_corrupted("s0") is False

    def test_fetch_timeout_unsticks_a_wedged_port(self):
        rig = make_rig(recovery=FULL_RECOVERY)
        attach(rig, FaultSpec("stuck", "s0", at_ns=0.0, stall_us=400.0))
        result = {}

        def body():
            data = yield from rig.master_read(rig.addr(0))
            result["data"] = data

        rig.sim.spawn("p", body)
        rig.sim.run(until=us(5000))
        stats = rig.drcf.stats
        assert result["data"] == [0]  # the read completed
        assert stats.fetch_timeouts == 1
        assert stats.recovery_actions >= 1
        assert rig.drcf.loaded_corrupted("s0") is False
