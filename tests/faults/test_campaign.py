"""The campaign engine: fault grid, trial classification, reporting."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    OUTCOMES,
    CampaignScenario,
    SCENARIOS,
    build_fault_grid,
    run_campaign,
)
from repro.faults.campaign import TIME_FRACTIONS, _run_trial


class TestScenario:
    def test_builtins(self):
        assert set(SCENARIOS) == {"minimal", "modem", "wireless"}
        for scenario in SCENARIOS.values():
            assert len(scenario.accels) >= 2

    def test_roundtrips_through_dict(self):
        scenario = SCENARIOS["modem"]
        assert CampaignScenario.from_dict(scenario.to_dict()) == scenario


class TestFaultGrid:
    def test_deterministic(self):
        scenario = SCENARIOS["minimal"]
        first = build_fault_grid(scenario, 12, seed=5, golden_makespan_ns=1e6)
        second = build_fault_grid(scenario, 12, seed=5, golden_makespan_ns=1e6)
        assert first == second
        assert first != build_fault_grid(scenario, 12, seed=6, golden_makespan_ns=1e6)

    def test_cycles_kinds_then_targets_then_times(self):
        scenario = SCENARIOS["minimal"]  # two targets
        grid = build_fault_grid(scenario, 24, seed=1, golden_makespan_ns=1e6)
        assert [s.kind for s in grid[:4]] == list(FAULT_KINDS)
        # After a full pass over kinds the target advances ...
        assert {s.target for s in grid[:8]} == set(scenario.accels)
        # ... and after kinds x targets the injection instant advances.
        fractions = sorted({s.at_ns / 1e6 for s in grid})
        assert fractions == sorted(TIME_FRACTIONS)

    def test_injection_times_scale_with_the_golden_makespan(self):
        scenario = SCENARIOS["minimal"]
        grid = build_fault_grid(scenario, 2, seed=1, golden_makespan_ns=2e6)
        assert grid[0].at_ns == pytest.approx(2e6 * TIME_FRACTIONS[0])


class TestTrialDeterminism:
    def test_same_payload_gives_identical_results(self):
        scenario = SCENARIOS["minimal"]
        grid = build_fault_grid(scenario, 2, seed=9, golden_makespan_ns=1e6)
        payload = {
            "scenario": scenario.to_dict(),
            "recovery": "retry",
            "fault": grid[1].to_dict(),
            "trial": 1,
            "trial_seed": 9 * 1_000_003 + 1,
            "until_ns": 5e7,
            "max_wall_s": 120.0,
        }
        assert _run_trial(payload) == _run_trial(payload)


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(SCENARIOS["minimal"], trials=4, seed=3, recovery="retry")

    def test_every_trial_lands_in_exactly_one_outcome(self, report):
        assert sum(report.counts.values()) == report.trials == 4
        assert set(report.counts) == set(OUTCOMES)
        for result in report.results:
            assert result.outcome in OUTCOMES

    def test_results_are_ordered_and_carry_their_fault(self, report):
        grid = build_fault_grid(
            SCENARIOS["minimal"], 4, seed=3,
            golden_makespan_ns=report.golden_makespan_ns,
        )
        assert [r.trial for r in report.results] == [0, 1, 2, 3]
        assert [r.fault for r in report.results] == [s.to_dict() for s in grid]

    def test_aggregates_are_consistent(self, report):
        assert report.golden_makespan_ns > 0
        not_masked = sum(report.counts[k] for k in ("recovered", "sdc", "hang"))
        if not_masked:
            assert report.coverage == pytest.approx(
                report.counts["recovered"] / not_masked
            )
        else:
            assert report.coverage is None
        for result in report.results:
            if result.outcome == "hang":
                assert result.makespan_ns is None
            else:
                assert result.makespan_ns is not None

    def test_json_is_deterministic_and_complete(self, report):
        text = report.to_json()
        assert text == report.to_json()
        data = json.loads(text)
        assert data["scenario"]["name"] == "minimal"
        assert data["recovery"] == "retry"
        assert len(data["results"]) == 4

    def test_render_mentions_the_headline_numbers(self, report):
        text = report.render()
        assert "fault campaign" in text
        assert "golden makespan" in text
        for name in OUTCOMES:
            assert name in text


class TestValidation:
    def test_rejects_empty_campaigns(self):
        with pytest.raises(ValueError):
            run_campaign(SCENARIOS["minimal"], trials=0, seed=1)

    def test_rejects_unknown_recovery_presets(self):
        with pytest.raises(KeyError, match="unknown recovery preset"):
            run_campaign(SCENARIOS["minimal"], trials=1, seed=1, recovery="heroic")
