"""The control-flow layer: CFGs, wait-state machines, REP5xx rules.

Every fixture class lives at module level in this file on purpose: the
analyzer reads process bodies with :func:`inspect.getsource`, which needs
the defining file on disk (classes built in a REPL or ``exec`` string are
conservatively treated as unresolved, not analyzed).
"""

import pytest

from repro.analysis import cfg as C
from repro.analysis.lint import RULES, run_lint
from repro.kernel import AnyOf, Clock, Module, Signal, Simulator, TIMEOUT, fs, ns


# ---------------------------------------------------------------------------
# Synthetic bodies covering the CFG corner cases
# ---------------------------------------------------------------------------

class Synth(Module):
    def __init__(self, name, sim=None, parent=None):
        super().__init__(name, parent=parent, sim=sim)
        self.a = Signal(self.sim, 0, name="a")
        self.b = Signal(self.sim, 0, name="b")
        self.req = Signal(self.sim, False, name="req")

    def single_writer(self):
        while True:
            self.a.write(self.a.read() + 1)
            yield ns(10)

    def double_writer(self):
        while True:
            self.a.write(0)
            self.a.write(1)
            yield ns(10)

    def pulse_method(self):
        self.b.write(True)
        self.b.write(False)

    def timeout_refined(self):
        while True:
            result = yield AnyOf([self.req.posedge], timeout=ns(5))
            if result is TIMEOUT:
                self.a.write(1)

    def while_else(self):
        n = 0
        while n < 3:
            n += 1
            yield ns(1)
        else:
            self.a.write(n)
        yield ns(1)

    def nested_break_continue(self):
        for i in range(4):
            while True:
                if i % 2:
                    break
                yield ns(1)
                break
            if i == 3:
                continue
            self.a.write(i)
            yield ns(1)

    def try_finally_wait(self):
        try:
            yield ns(5)
            self.a.write(1)
        finally:
            self.b.write(1)
        yield ns(5)

    def early_return(self):
        yield ns(1)
        if self.a.read() > 10:
            return
        self.b.write(1)
        yield ns(1)

    def livelock(self):
        while True:
            if self.req.read():
                yield self.req.negedge

    def no_livelock(self):
        while True:
            yield ns(10)
            self.a.write(1)

    def dead_code(self):
        while True:
            yield ns(1)
        self.a.write(99)

    def helper_write(self):
        self.a.write(1)

    def calls_helper(self):
        while True:
            self.helper_write()
            yield ns(10)

    def double_via_helper(self):
        while True:
            self.a.write(0)
            self.helper_write()
            yield ns(10)

    def gen_helper(self):
        yield ns(10)

    def splices(self):
        while True:
            self.a.write(1)
            yield from self.gen_helper()

    def foreign_splice(self):
        yield from iter([ns(1)])

    def recursive(self):
        yield ns(1)
        yield from self.recursive()


def _flow(name):
    return C.analyze_function(Synth, getattr(Synth, name))


class TestCornerCases:
    """Each construct must yield a well-formed machine or a conservative
    unresolved flag — never a crash."""

    @pytest.mark.parametrize(
        "name",
        [
            "single_writer", "double_writer", "pulse_method",
            "timeout_refined", "while_else", "nested_break_continue",
            "try_finally_wait", "early_return", "livelock", "no_livelock",
            "dead_code", "calls_helper", "double_via_helper", "splices",
        ],
    )
    def test_resolves_to_machine(self, name):
        flow = _flow(name)
        assert not flow.unresolved, flow.reason
        assert flow.cfg is not None and flow.machine is not None
        # Well-formed: every edge endpoint is a known state index.
        indices = {s.index for s in flow.machine.states}
        for edge in flow.machine.edges:
            assert edge.src in indices and edge.dst in indices

    def test_while_else_effects(self):
        flow = _flow("while_else")
        # The else-arm write is reachable and counted once per instant.
        assert flow.write_counts.get(("a",)) == 1

    def test_nested_break_continue_states(self):
        flow = _flow("nested_break_continue")
        waits = [s for s in flow.machine.states if s.kind == "timed"]
        assert len(waits) == 2
        assert not C.waitless_loops(flow)  # break/continue is not a livelock

    def test_try_finally_wait(self):
        flow = _flow("try_finally_wait")
        # finally-body write reaches the machine on the normal path.
        assert flow.write_counts.get(("b",)) == 1
        assert flow.write_counts.get(("a",)) == 1

    def test_early_return_reaches_exit(self):
        flow = _flow("early_return")
        end = [s for s in flow.machine.states if s.kind == "end"]
        assert len(end) == 1
        assert flow.write_counts.get(("b",)) == 1

    def test_foreign_yield_from_unresolved(self):
        flow = _flow("foreign_splice")
        assert flow.unresolved and "yield from" in flow.reason

    def test_recursive_splice_unresolved(self):
        flow = _flow("recursive")
        assert flow.unresolved

    def test_analyze_never_raises_without_source(self):
        flow = C.analyze_function(Synth, len)  # builtin: no source at all
        assert flow.unresolved


class TestWriteCounts:
    def test_single_writer_proved(self):
        assert _flow("single_writer").write_counts.get(("a",)) == 1

    def test_double_writer_counts_many(self):
        assert _flow("double_writer").write_counts.get(("a",)) >= 2

    def test_pulse_method_counts_many(self):
        assert _flow("pulse_method").write_counts.get(("b",)) >= 2

    def test_timeout_branch_advances(self):
        # The `result is TIMEOUT` branch proves time advanced, so the
        # write in it starts a fresh instant: count stays 1.
        assert _flow("timeout_refined").write_counts.get(("a",)) == 1

    def test_helper_inlined(self):
        assert _flow("calls_helper").write_counts.get(("a",)) == 1
        assert _flow("double_via_helper").write_counts.get(("a",)) >= 2

    def test_yield_from_splice(self):
        # The spliced constant timed wait resets the per-instant count.
        assert _flow("splices").write_counts.get(("a",)) == 1


class TestProofs:
    def test_static_analysis_cannot_prove_clock_toggle(self):
        flow = C.analyze_function(Clock, Clock._toggle)
        assert not flow.unresolved
        assert flow.write_counts.get(("signal",)) >= 2

    def test_live_clock_proof(self):
        sim = Simulator()
        clk = Clock("clk", ns(10), sim=sim)
        proc = next(p for p in sim._processes if "toggle" in p.name)
        ok, why = C.proven_single_instant_writer(proc, clk.signal)
        assert ok and "clock" in why

    def test_degenerate_clock_rejected(self):
        sim = Simulator()
        bad = Clock("bad", fs(1), sim=sim, duty=0.4)  # high time rounds to 0
        proc = next(p for p in sim._processes if "toggle" in p.name)
        ok, why = C.proven_single_instant_writer(proc, bad.signal)
        assert not ok and "degenerate" in why

    def test_thread_machine_proof(self):
        sim = Simulator()
        top = Synth("t", sim=sim)
        good = top.add_thread(top.single_writer, name="sw")
        bad = top.add_thread(top.double_writer, name="dw")
        assert C.proven_single_instant_writer(good, top.a)[0]
        assert not C.proven_single_instant_writer(bad, top.a)[0]


class TestRuleQueries:
    def test_livelock_positive(self):
        flow = _flow("livelock")
        loops = C.waitless_loops(flow)
        assert loops and all(isinstance(line, int) for line, _ in loops)

    def test_livelock_negative(self):
        assert not C.waitless_loops(_flow("no_livelock"))

    def test_unreachable(self):
        dead = C.unreachable_statements(_flow("dead_code"))
        assert dead and any("99" in source for _, source in dead)
        assert not C.unreachable_statements(_flow("no_livelock"))

    def test_write_coverage(self):
        may, must = C.write_coverage(_flow("pulse_method"))
        assert ("b",) in may and ("b",) in must


# ---------------------------------------------------------------------------
# REP5xx rules: one positive and one clean negative design each
# ---------------------------------------------------------------------------

class LivelockTop(Module):
    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.req = Signal(self.sim, False, name="req")
        self.add_thread(self.spin)

    def spin(self):
        while True:
            if self.req.read():
                yield self.req.negedge


class NoLivelockTop(Module):
    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.req = Signal(self.sim, False, name="req")
        self.add_thread(self.tick)

    def tick(self):
        while True:
            yield ns(10)


class DeadCodeTop(Module):
    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.done = Signal(self.sim, False, name="done")
        self.add_thread(self.run_forever)

    def run_forever(self):
        while True:
            yield ns(10)
        self.done.write(True)


class LatchTop(Module):
    """REP503 positive: clocked method writes q only when enable is high."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", ns(10), parent=self)
        self.d = Signal(self.sim, 0, name="d")
        self.q = Signal(self.sim, 0, name="q")
        self.enable = Signal(self.sim, True, name="en")
        self.add_method(self.stage, sensitivity=(self.clk.posedge,), initialize=False)

    def stage(self):
        if self.enable.read():
            self.q.write(self.d.read())


class RegisteredTop(Module):
    """REP503 negative: same shape but q written on every path."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", ns(10), parent=self)
        self.d = Signal(self.sim, 0, name="d")
        self.q = Signal(self.sim, 0, name="q")
        self.enable = Signal(self.sim, True, name="en")
        self.add_method(self.stage, sensitivity=(self.clk.posedge,), initialize=False)

    def stage(self):
        if self.enable.read():
            self.q.write(self.d.read())
        else:
            self.q.write(self.q.read())


class HandshakeTop(Module):
    """REP504 positive: waits only when ack is low."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.ack = Signal(self.sim, False, name="ack")
        self.data = Signal(self.sim, 0, name="data")
        self.add_thread(self.producer)

    def producer(self):
        while True:
            if not self.ack.read():
                yield self.ack.posedge
            self.data.write(self.data.read() + 1)
            yield ns(10)


class GuardedTop(Module):
    """REP504 negative: the non-waiting arm leaves the branch entirely."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.ack = Signal(self.sim, False, name="ack")
        self.data = Signal(self.sim, 0, name="data")
        self.add_thread(self.producer)

    def producer(self):
        while True:
            if not self.ack.read():
                yield ns(1)
                continue
            self.data.write(self.data.read() + 1)
            yield ns(10)


class ParamGuardTop(Module):
    """REP504 negative: the guard reads only a local, so the variable
    latency is a modeled parameter (the accelerator ``if duration >
    ZERO_TIME: yield duration`` idiom), not signal data."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.data = Signal(self.sim, 0, name="data")
        self.add_thread(self.engine)

    def engine(self):
        while True:
            duration = self.latency()
            if duration > ns(0):
                yield duration
            self.data.write(self.data.read() + 1)

    def latency(self):
        return ns(5)


class CdcTop(Module):
    """REP505 positive: flag written in clk_a domain, read in clk_b domain."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.clk_a = Clock("clk_a", ns(10), parent=self)
        self.clk_b = Clock("clk_b", ns(7), parent=self)
        self.src = Signal(self.sim, 0, name="src")
        self.flag = Signal(self.sim, 0, name="flag")
        self.out = Signal(self.sim, 0, name="out")
        self.other = Signal(self.sim, 0, name="other")
        self.add_method(self.producer, sensitivity=(self.clk_a.posedge,), initialize=False)
        self.add_method(self.consumer, sensitivity=(self.clk_b.posedge,), initialize=False)

    def producer(self):
        self.flag.write(self.src.read())

    def consumer(self):
        # reads two signals -> not a synchronizer flop
        self.out.write(self.flag.read() + self.other.read())


class CdcSyncTop(Module):
    """REP505 negative: the crossing goes through a synchronizer flop."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.clk_a = Clock("clk_a", ns(10), parent=self)
        self.clk_b = Clock("clk_b", ns(7), parent=self)
        self.src = Signal(self.sim, 0, name="src")
        self.flag = Signal(self.sim, 0, name="flag")
        self.flag_sync = Signal(self.sim, 0, name="flag_sync")
        self.out = Signal(self.sim, 0, name="out")
        self.other = Signal(self.sim, 0, name="other")
        self.add_method(self.producer, sensitivity=(self.clk_a.posedge,), initialize=False)
        self.add_method(self.sync, sensitivity=(self.clk_b.posedge,), initialize=False)
        self.add_method(self.consumer, sensitivity=(self.clk_b.posedge,), initialize=False)

    def producer(self):
        self.flag.write(self.src.read())

    def sync(self):
        self.flag_sync.write(self.flag.read())

    def consumer(self):
        self.out.write(self.flag_sync.read() + self.other.read())


class EntryRaceTop(Module):
    """REP506 positive: two threads write mode before their first wait."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.mode = Signal(self.sim, 0, name="mode")
        self.add_thread(self.init_a)
        self.add_thread(self.init_b)

    def init_a(self):
        self.mode.write(1)
        yield ns(10)

    def init_b(self):
        self.mode.write(2)
        yield ns(10)


class StaggeredTop(Module):
    """REP506 negative: second writer waits before writing."""

    def __init__(self, name, sim=None):
        super().__init__(name, sim=sim)
        self.mode = Signal(self.sim, 0, name="mode")
        self.add_thread(self.init_a)
        self.add_thread(self.init_b)

    def init_a(self):
        self.mode.write(1)
        yield ns(10)

    def init_b(self):
        yield ns(5)
        self.mode.write(2)
        yield ns(10)


def _codes(top_cls, select):
    sim = Simulator()
    top = top_cls("t", sim=sim)
    report = run_lint(design=top, cfg=True, select=select)
    return [d.code for d in report.diagnostics]


class TestRep5xxRules:
    @pytest.mark.parametrize(
        "code,positive,negative",
        [
            ("REP501", LivelockTop, NoLivelockTop),
            ("REP502", DeadCodeTop, NoLivelockTop),
            ("REP503", LatchTop, RegisteredTop),
            ("REP504", HandshakeTop, GuardedTop),
            ("REP504", HandshakeTop, ParamGuardTop),
            ("REP505", CdcTop, CdcSyncTop),
            ("REP506", EntryRaceTop, StaggeredTop),
        ],
    )
    def test_positive_and_clean_negative(self, code, positive, negative):
        assert code in _codes(positive, code)
        assert _codes(negative, code) == []

    def test_cfg_layer_is_opt_in(self):
        sim = Simulator()
        top = LivelockTop("t", sim=sim)
        report = run_lint(design=top, dataflow=True, select="REP5")
        assert report.diagnostics == []

    def test_layer_field(self):
        sim = Simulator()
        top = LivelockTop("t", sim=sim)
        report = run_lint(design=top, cfg=True, select="REP501")
        [diag] = report.diagnostics
        assert diag.layer == "cfg"
        assert diag.to_dict()["layer"] == "cfg"

    def test_every_rep5_rule_has_example(self):
        rep5 = [r for code, r in RULES.items() if code.startswith("REP5")]
        assert len(rep5) == 6
        for entry in rep5:
            assert entry.example.strip()
            assert entry.layer == "cfg"

    def test_stable_sort_with_layers(self):
        sim = Simulator()
        top = LivelockTop("t", sim=sim)
        report = run_lint(design=top, cfg=True)
        keys = [(d.code, d.location, d.message) for d in report.diagnostics]
        assert keys == sorted(keys)
