"""Run-level metric aggregation."""

import pytest

from repro.analysis import collect_run_metrics, per_context_rows, speedup
from tests.core.helpers import DrcfRig


def run_rig():
    rig = DrcfRig(n_contexts=2)

    def body():
        yield from rig.master_read(rig.addr(0))
        yield from rig.master_read(rig.addr(1))

    rig.sim.spawn("p", body)
    rig.sim.run()
    return rig


class TestCollectRunMetrics:
    def test_kernel_metrics_always_present(self):
        rig = run_rig()
        report = collect_run_metrics(rig.sim)
        assert report["sim_time_us"] > 0
        assert report["process_executions"] > 0

    def test_bus_and_drcf_sections(self):
        rig = run_rig()
        report = collect_run_metrics(rig.sim, bus=rig.bus, drcf=rig.drcf)
        assert report["bus_config_words"] > 0
        assert report["bus_data_words"] > 0
        assert report["drcf_switches"] == 2
        assert report["drcf_fetch_misses"] == 2
        assert report["drcf_energy_mj"] > 0
        assert 0 < report["drcf_overhead_fraction"] <= 1

    def test_extra_values_merged(self):
        rig = run_rig()
        report = collect_run_metrics(rig.sim, extra={"custom": 42})
        assert report["custom"] == 42
        assert report.get("missing", "d") == "d"

    def test_render_contains_all_keys(self):
        rig = run_rig()
        report = collect_run_metrics(rig.sim, bus=rig.bus)
        text = report.render("my run")
        assert text.startswith("my run")
        for key in report.values:
            assert key in text


class TestPerContextRows:
    def test_rows_for_each_context(self):
        rig = run_rig()
        rows = per_context_rows(rig.drcf)
        assert {row["context"] for row in rows} == {"s0", "s1"}
        for row in rows:
            assert row["calls"] == 1
            assert row["reconfigurations"] == 1


class TestSpeedup:
    def test_ratio(self):
        assert speedup(100.0, 50.0) == 2.0
        assert speedup(50.0, 100.0) == 0.5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
