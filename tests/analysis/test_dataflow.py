"""The process-body dataflow analyzer: REP4xx rules and the dynamic cross-check.

Every fixture class lives at module level in this file on purpose: the
analyzer reads process bodies with :func:`inspect.getsource`, which needs
the defining file on disk (classes built in a REPL or ``exec`` string are
conservatively skipped, not analyzed).
"""

import pytest

from repro.analysis import (
    DesignDataflow,
    cross_check,
    run_lint,
    summarize_process,
)
from repro.apps.soc import (
    make_baseline_netlist,
    make_multi_fabric_netlist,
    make_reconfigurable_netlist,
)
from repro.core import Netlist
from repro.kernel import (
    Event,
    Module,
    Port,
    Signal,
    Simulator,
    events_of,
    ns,
    processes_of,
)
from repro.tech import MORPHOSYS


# ---------------------------------------------------------------------------
# Fixture modules, one per rule (positive + clean counterpart)
# ---------------------------------------------------------------------------

class Racy(Module):
    """REP401 positive: two always-runnable threads write one signal."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.flag = Signal(self.sim, 0, name=f"{self.full_name}.flag")
        self.add_thread(self.writer_a, name="writer_a")
        self.add_thread(self.writer_b, name="writer_b")

    def writer_a(self):
        while True:
            self.flag.write(1)
            yield ns(10)

    def writer_b(self):
        while True:
            self.flag.write(0)
            yield ns(10)


class RacySharedEvent(Module):
    """REP401 positive: two methods fired by the same event write one signal."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.tick = Signal(self.sim, 0, name="tick")
        self.out = Signal(self.sim, 0, name="out")
        self.add_method(
            self.m_a,
            sensitivity=(self.tick.value_changed,),
            name="m_a",
            initialize=False,
        )
        self.add_method(
            self.m_b,
            sensitivity=(self.tick.value_changed,),
            name="m_b",
            initialize=False,
        )
        self.add_thread(self.stim, name="stim")

    def m_a(self):
        self.out.write(self.tick.read())

    def m_b(self):
        self.out.write(-self.tick.read())

    def stim(self):
        self.tick.write(1)
        yield ns(10)


class PhasedWriters(Module):
    """REP401 fires statically, but the writers never collide at run time:
    the second writer sleeps before its first write, so the dynamic
    cross-check must report the finding *unconfirmed*."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.flag = Signal(self.sim, 0, name="flag")
        self.add_thread(self.early, name="early")
        self.add_thread(self.late, name="late")

    def early(self):
        self.flag.write(1)
        yield ns(10)

    def late(self):
        yield ns(5)
        self.flag.write(2)


class HandedOff(Module):
    """REP401 clean: two writers with disjoint activation events — they can
    never be runnable in the same delta cycle."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.sel_a = Signal(self.sim, 0, name="sel_a")
        self.sel_b = Signal(self.sim, 0, name="sel_b")
        self.flag = Signal(self.sim, 0, name="flag")
        self.add_method(
            self.on_a,
            sensitivity=(self.sel_a.posedge,),
            name="on_a",
            initialize=False,
        )
        self.add_method(
            self.on_b,
            sensitivity=(self.sel_b.posedge,),
            name="on_b",
            initialize=False,
        )
        self.add_thread(self.stim, name="stim")

    def on_a(self):
        self.flag.write(1)

    def on_b(self):
        self.flag.write(2)

    def stim(self):
        self.sel_a.write(1)
        yield ns(10)
        self.sel_a.write(0)
        self.sel_b.write(1)
        yield ns(10)


class BadMethod(Module):
    """REP402 positive (react reads ``other`` outside its sensitivity) and
    REP404 positive (``blocking`` is a method process containing a yield)."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.inp = Signal(self.sim, 0, name="inp")
        self.other = Signal(self.sim, 0, name="other")
        self.out = Signal(self.sim, 0, name="out")
        self.add_method(
            self.react, sensitivity=(self.inp.value_changed,), name="react"
        )
        self.add_method(
            self.blocking, sensitivity=(self.inp.value_changed,), name="blocking"
        )

    def react(self):
        self.out.write(self.inp.read() + self.other.read())

    def blocking(self):
        yield ns(5)


class GoodMethod(Module):
    """REP402/REP404 clean: every read signal is in the sensitivity list."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.a = Signal(self.sim, 0, name="a")
        self.b = Signal(self.sim, 0, name="b")
        self.out = Signal(self.sim, 0, name="out")
        self.add_method(
            self.add_them,
            sensitivity=(self.a.value_changed, self.b.value_changed),
            name="add_them",
        )

    def add_them(self):
        self.out.write(self.a.read() + self.b.read())


class Looping(Module):
    """REP403 positive: m1 and m2 retrigger each other forever."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.a = Signal(self.sim, 0, name="a")
        self.b = Signal(self.sim, 0, name="b")
        self.add_method(self.m1, sensitivity=(self.a.value_changed,), name="m1")
        self.add_method(self.m2, sensitivity=(self.b.value_changed,), name="m2")

    def m1(self):
        self.b.write(self.a.read() + 1)

    def m2(self):
        self.a.write(self.b.read() + 1)


class Chained(Module):
    """REP403 clean: a method chain without a cycle (a -> b -> c)."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.a = Signal(self.sim, 0, name="a")
        self.b = Signal(self.sim, 0, name="b")
        self.c = Signal(self.sim, 0, name="c")
        self.add_method(self.s1, sensitivity=(self.a.value_changed,), name="s1")
        self.add_method(self.s2, sensitivity=(self.b.value_changed,), name="s2")

    def s1(self):
        self.b.write(self.a.read())

    def s2(self):
        self.c.write(self.b.read())


class DeadWait(Module):
    """REP405 positive: ``go`` is waited on but nothing ever notifies it."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.go = Signal  # shadowed below; keeps linters honest about attrs
        self.go = Event(self.sim, f"{self.full_name}.go")
        self.add_thread(self.waiter, name="waiter")

    def waiter(self):
        yield self.go


class LiveWait(Module):
    """REP405 clean: the waited event has a notifier process."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.go = Event(self.sim, "go")
        self.add_thread(self.waiter, name="waiter")
        self.add_thread(self.kicker, name="kicker")

    def waiter(self):
        yield self.go

    def kicker(self):
        yield ns(1)
        self.go.notify()


class Holder(Module):
    """Half of the cross-module REP204/REP401 pair: owns the raced signal."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.level = Signal(self.sim, 0, name=f"{self.full_name}.level")
        self.add_thread(self.local_driver, name="local_driver")

    def local_driver(self):
        while True:
            self.level.write(1)
            yield ns(20)


class RemoteDriver(Module):
    """Other half: writes the holder's signal through a bound port."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.out_port = Port(self, name="out_port")
        self.add_thread(self.remote_driver, name="remote_driver")

    def remote_driver(self):
        while True:
            self.out_port.write(0)
            yield ns(20)


def _single(module_cls, net_name="net"):
    """Wrap one fixture module as a netlist with instance name ``dut``."""
    netlist = Netlist(net_name)
    netlist.add("dut", module_cls)
    return netlist


def _bind_remote(inst, design):
    inst.out_port.bind(design["holder"].level)


def cross_module_netlist():
    netlist = Netlist("net")
    netlist.add("holder", Holder)
    netlist.add("remote", RemoteDriver, post_elaborate=_bind_remote)
    return netlist


# ---------------------------------------------------------------------------
# REP401 — same-delta multi-driver race
# ---------------------------------------------------------------------------

class TestRep401:
    def test_two_initial_threads_race(self):
        report = run_lint(_single(Racy), dataflow=True)
        diags = report.by_code("REP401")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "error"
        assert d.location == "net.dut.flag"
        assert "writer_a" in d.message and "writer_b" in d.message
        assert "first delta cycle" in d.message

    def test_shared_activation_event_race(self):
        report = run_lint(_single(RacySharedEvent), dataflow=True)
        diags = report.by_code("REP401")
        assert len(diags) == 1, report.render()
        assert diags[0].location == "net.dut.out"
        assert "activated by event" in diags[0].message

    def test_event_handoff_is_clean(self):
        report = run_lint(_single(HandedOff), dataflow=True)
        assert report.by_code("REP401") == [], report.render()

    def test_not_reported_without_dataflow_layer(self):
        report = run_lint(_single(Racy))
        assert report.by_code("REP401") == []
        # the always-on REP204 still sees the double driver
        assert report.by_code("REP204")


# ---------------------------------------------------------------------------
# REP402 — method reads outside its static sensitivity
# ---------------------------------------------------------------------------

class TestRep402:
    def test_read_outside_sensitivity_flagged(self):
        report = run_lint(_single(BadMethod), dataflow=True)
        diags = report.by_code("REP402")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "warning"
        assert d.location == "net.dut.react"
        assert "other" in d.message

    def test_fully_sensitive_method_is_clean(self):
        report = run_lint(_single(GoodMethod), dataflow=True)
        assert report.by_code("REP402") == [], report.render()


# ---------------------------------------------------------------------------
# REP403 — combinational loop through method processes
# ---------------------------------------------------------------------------

class TestRep403:
    def test_mutual_retrigger_loop(self):
        report = run_lint(_single(Looping), dataflow=True)
        diags = report.by_code("REP403")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "warning"
        assert "net.dut.m1" in d.message and "net.dut.m2" in d.message

    def test_acyclic_chain_is_clean(self):
        report = run_lint(_single(Chained), dataflow=True)
        assert report.by_code("REP403") == [], report.render()


# ---------------------------------------------------------------------------
# REP404 — yield inside a method process
# ---------------------------------------------------------------------------

class TestRep404:
    def test_generator_method_process_flagged(self):
        report = run_lint(_single(BadMethod), dataflow=True)
        diags = report.by_code("REP404")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "error"
        assert d.location == "net.dut.blocking"

    def test_thread_process_yield_is_fine(self):
        report = run_lint(_single(LiveWait), dataflow=True)
        assert report.by_code("REP404") == [], report.render()


# ---------------------------------------------------------------------------
# REP405 — wait on an event nothing notifies
# ---------------------------------------------------------------------------

class TestRep405:
    def test_dead_wait_flagged(self):
        report = run_lint(_single(DeadWait), dataflow=True)
        diags = report.by_code("REP405")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "error"
        assert d.location == "net.dut.go"

    def test_notified_event_is_clean(self):
        report = run_lint(_single(LiveWait), dataflow=True)
        assert report.by_code("REP405") == [], report.render()


# ---------------------------------------------------------------------------
# REP406 — DRCF unreachable from any master
# ---------------------------------------------------------------------------

class TestRep406:
    def test_fabric_without_master_flagged(self):
        netlist, _ = make_reconfigurable_netlist()
        netlist.remove("cpu")
        report = run_lint(netlist, dataflow=True)
        diags = report.by_code("REP406")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.severity == "warning"
        assert d.location == "top.drcf1"

    def test_reconfigurable_template_is_clean(self):
        netlist, _ = make_reconfigurable_netlist()
        report = run_lint(netlist, dataflow=True)
        assert report.by_code("REP406") == [], report.render()


# ---------------------------------------------------------------------------
# Satellite 1 — REP204 attribution across port binding chains
# ---------------------------------------------------------------------------

class TestRep204PortChain:
    def test_cross_module_port_writer_attributed(self):
        report = run_lint(cross_module_netlist(), dataflow=True)
        diags = report.by_code("REP204")
        assert len(diags) == 1, report.render()
        d = diags[0]
        assert d.location == "net.holder.level"
        assert "net.holder.local_driver" in d.message
        assert "net.remote.remote_driver" in d.message
        # the sharpened rule sees the same pair
        assert report.by_code("REP401"), report.render()


# ---------------------------------------------------------------------------
# Dynamic cross-check (`--confirm` engine)
# ---------------------------------------------------------------------------

class TestCrossCheck:
    def test_race_confirmed(self):
        netlist = _single(Racy)
        report = run_lint(netlist, dataflow=True)
        statuses = cross_check(netlist, report.diagnostics)
        assert statuses[("REP401", "net.dut.flag")] == "confirmed"

    def test_dead_wait_confirmed(self):
        netlist = _single(DeadWait)
        report = run_lint(netlist, dataflow=True)
        statuses = cross_check(netlist, report.diagnostics)
        assert statuses[("REP405", "net.dut.go")] == "confirmed"

    def test_phased_writers_unconfirmed(self):
        netlist = _single(PhasedWriters)
        report = run_lint(netlist, dataflow=True)
        assert report.by_code("REP401"), report.render()
        statuses = cross_check(netlist, report.diagnostics)
        assert statuses[("REP401", "net.dut.flag")] == "unconfirmed"

    def test_no_targets_returns_empty(self):
        netlist = _single(GoodMethod)
        report = run_lint(netlist, dataflow=True)
        assert cross_check(netlist, report.diagnostics) == {}


# ---------------------------------------------------------------------------
# Analyzer internals: summaries and the design-level graph
# ---------------------------------------------------------------------------

class TestSummaries:
    def _elaborate(self, module_cls):
        sim = Simulator()
        netlist = _single(module_cls)
        return netlist.elaborate(sim)

    def test_thread_summary_collects_effects(self):
        design = self._elaborate(LiveWait)
        dut = design["dut"]
        by_name = {p.name: p for p in processes_of(dut)}
        kicker = summarize_process(by_name["net.dut.kicker"])
        assert kicker.kind == "thread"
        assert kicker.runs_at_start
        assert dut.go in kicker.notified_events
        waiter = summarize_process(by_name["net.dut.waiter"])
        assert dut.go in waiter.waited_events
        assert not waiter.unresolved_wait

    def test_method_summary_reads_and_writes(self):
        design = self._elaborate(GoodMethod)
        dut = design["dut"]
        (proc,) = processes_of(dut)
        summary = summarize_process(proc)
        assert summary.kind == "method"
        assert dut.a in summary.signal_reads
        assert dut.b in summary.signal_reads
        assert dut.out in summary.signal_writes
        assert not summary.yields_in_body

    def test_design_dataflow_signal_uses(self):
        design = self._elaborate(Racy)
        analysis = DesignDataflow(design.top)
        uses = {u.label: u for u in analysis.signal_uses()}
        use = uses["net.dut.flag"]
        assert sorted(w.name for w in use.writers) == [
            "net.dut.writer_a",
            "net.dut.writer_b",
        ]


# ---------------------------------------------------------------------------
# Kernel hooks the analyzer relies on
# ---------------------------------------------------------------------------

class TestKernelHooks:
    def test_events_of_finds_module_events(self):
        sim = Simulator()
        design = _single(DeadWait).elaborate(sim)
        events = events_of(design["dut"])
        assert list(events) == ["go"]
        assert events["go"] is design["dut"].go

    def test_signal_events_triple(self):
        sim = Simulator()
        sig = Signal(sim, 0, name="s")
        assert sig.events() == (sig.value_changed, sig.posedge, sig.negedge)

    def test_process_kind_and_runs_at_start(self):
        sim = Simulator()
        design = _single(GoodMethod).elaborate(sim)
        (method,) = processes_of(design["dut"])
        assert method.kind == "method"
        assert method.runs_at_start  # add_method initializes by default
        design2 = _single(Racy).elaborate(Simulator())
        for proc in processes_of(design2["dut"]):
            assert proc.kind == "thread"
            assert proc.runs_at_start

    def test_write_hook_sees_writer_process(self):
        sim = Simulator()
        design = _single(Racy).elaborate(sim)
        seen = []
        design["dut"].flag.write_hook = lambda sig, value: seen.append(
            (sim.current_process.name if sim.current_process else None, value)
        )
        sim.run(until=ns(5))
        writers = {name for name, _ in seen}
        assert writers == {"net.dut.writer_a", "net.dut.writer_b"}
        assert sim.current_process is None  # reset after run()


# ---------------------------------------------------------------------------
# Acceptance: the shipped templates carry no REP4xx findings
# ---------------------------------------------------------------------------

class TestTemplatesClean:
    @pytest.mark.parametrize(
        "factory",
        [
            make_baseline_netlist,
            make_reconfigurable_netlist,
            lambda: make_multi_fabric_netlist(
                {"fa": (("fir",), MORPHOSYS), "fb": (("fft",), MORPHOSYS)}
            ),
        ],
        ids=["baseline", "reconfigurable", "multi_fabric"],
    )
    def test_template_has_no_rep4xx(self, factory):
        netlist, _ = factory()
        report = run_lint(netlist, dataflow=True)
        rep4 = [d for d in report.diagnostics if d.code.startswith("REP4")]
        assert rep4 == [], report.render()
