"""The static model linter: every rule code, the engine, and suppression."""

import pytest

from repro.analysis.lint import (
    DEADLOCK_RULE_CODE,
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    all_rule_codes,
    run_lint,
)
from repro.apps.accelerators import FirAccelerator
from repro.apps.soc import (
    make_baseline_netlist,
    make_multi_fabric_netlist,
    make_reconfigurable_netlist,
)
from repro.bus import Bus, BusSlaveIf, Memory
from repro.core import Netlist, Ref8Drcf, transform_to_drcf
from repro.cpu import Processor
from repro.kernel import Module, Port, Signal, Simulator
from repro.tech import MORPHOSYS, VIRTEX2PRO


def codes_of(report):
    return report.codes()


# ---------------------------------------------------------------------------
# Acceptance: the two headline architectures the linter must catch
# ---------------------------------------------------------------------------

class TestAcceptance:
    def test_e7_deadlock_architecture_produces_rep310_error(self):
        netlist, _ = make_reconfigurable_netlist(bus_protocol="blocking")
        report = run_lint(netlist)
        diags = report.by_code("REP310")
        assert diags, report.render()
        assert diags[0].severity == "error"
        assert "limitation 3" in diags[0].message
        assert report.has_errors

    def test_overlapping_drcf_config_regions_produce_rep301_error(self):
        netlist, _ = make_multi_fabric_netlist(
            {"f1": (("fir",), MORPHOSYS), "f2": (("fft",), MORPHOSYS)},
            config_region_bytes=64,
        )
        report = run_lint(netlist)
        diags = report.by_code("REP301")
        assert diags, report.render()
        assert diags[0].severity == "error"
        assert "overlap" in diags[0].message
        assert report.has_errors

    def test_at_least_twelve_rules_registered(self):
        assert len(all_rule_codes()) >= 12

    def test_deadlock_rule_code_constant(self):
        assert DEADLOCK_RULE_CODE == "REP310"
        assert DEADLOCK_RULE_CODE in RULES


# ---------------------------------------------------------------------------
# Clean templates stay clean
# ---------------------------------------------------------------------------

class TestCleanTemplates:
    def test_baseline_template(self):
        netlist, _ = make_baseline_netlist()
        report = run_lint(netlist)
        assert report.diagnostics == [], report.render()

    def test_reconfigurable_template(self):
        netlist, _ = make_reconfigurable_netlist()
        report = run_lint(netlist)
        assert report.diagnostics == [], report.render()

    def test_dedicated_config_bus_template(self):
        netlist, _ = make_reconfigurable_netlist(dedicated_config_bus=True)
        report = run_lint(netlist)
        assert report.diagnostics == [], report.render()

    def test_multi_fabric_default_regions(self):
        netlist, _ = make_multi_fabric_netlist(
            {"f1": (("fir",), MORPHOSYS), "f2": (("fft",), VIRTEX2PRO)}
        )
        report = run_lint(netlist)
        assert report.diagnostics == [], report.render()


# ---------------------------------------------------------------------------
# Netlist-layer rules
# ---------------------------------------------------------------------------

class TestNetlistRules:
    def test_rep001_elaboration_failure(self):
        def boom(name, parent=None, sim=None):
            raise RuntimeError("constructor exploded")

        netlist = Netlist()
        netlist.add("bad", boom)
        report = run_lint(netlist)
        diags = report.by_code("REP001")
        assert diags and "constructor exploded" in diags[0].message

    def test_rep101_bad_name_and_uncallable_factory(self):
        netlist = Netlist()
        netlist.add("dotted.name", Bus)
        spec = netlist.add("uncallable", Bus)
        spec.factory = 42
        report = run_lint(netlist, elaborate=False)
        messages = " | ".join(d.message for d in report.by_code("REP101"))
        assert "dotted.name" in messages
        assert "not callable" in messages

    def test_rep102_dangling_reference(self):
        netlist = Netlist()
        netlist.add("mem", Memory, slave_of="ghost_bus", base=0, size_words=16)
        report = run_lint(netlist, elaborate=False)
        diags = report.by_code("REP102")
        assert diags and "ghost_bus" in diags[0].message

    def test_rep103_reference_target_not_a_bus(self):
        netlist = Netlist()
        netlist.add("system_bus", Bus, protocol="split")
        netlist.add("mem", Memory, slave_of="system_bus", base=0, size_words=16)
        netlist.add("fir", FirAccelerator, slave_of="mem", base=0x1000)
        netlist.add("cpu", Processor, master_of="mem")
        report = run_lint(netlist, elaborate=False)
        messages = " | ".join(d.message for d in report.by_code("REP103"))
        assert "register_slave" in messages  # slave_of a memory
        assert "BusMasterIf" in messages  # master_of a memory

    def test_rep104_static_overlap_detected_without_elaborating(self):
        netlist, _ = make_baseline_netlist(("fir", "fft"))
        netlist.component("fft").kwargs["base"] = netlist.component("fir").kwargs["base"]
        report = run_lint(netlist, elaborate=False)
        diags = report.by_code("REP104")
        assert diags and "overlaps" in diags[0].message

    def test_rep105_slave_without_slave_interface(self):
        netlist = Netlist()
        netlist.add("system_bus", Bus, protocol="split")
        netlist.add("cpu", Processor, slave_of="system_bus")
        report = run_lint(netlist, elaborate=False)
        diags = report.by_code("REP105")
        assert diags and "BusSlaveIf" in diags[0].message

    def test_rep310_warning_for_generic_component(self):
        netlist = Netlist()
        netlist.add("system_bus", Bus)  # protocol defaults to blocking
        netlist.add(
            "mem", Memory, slave_of="system_bus", master_of="system_bus",
            base=0, size_words=16,
        )
        report = run_lint(netlist, elaborate=False)
        diags = report.by_code("REP310")
        assert diags and diags[0].severity == "warning"

    def test_rep310_split_protocol_is_clean(self):
        netlist, _ = make_reconfigurable_netlist(bus_protocol="split")
        assert run_lint(netlist).by_code("REP310") == []

    def test_rep310_ref8_baseline_exempt(self):
        netlist, info = make_baseline_netlist(("fir",), bus_protocol="blocking")
        result = transform_to_drcf(
            netlist, ["fir"], tech=VIRTEX2PRO,
            config_memory="cfgmem", config_base=info.cfg_base,
            drcf_cls=Ref8Drcf,
        )
        report = run_lint(result.netlist)
        assert report.by_code("REP310") == [], report.render()


# ---------------------------------------------------------------------------
# Transform-layer rules
# ---------------------------------------------------------------------------

class TestTransformRules:
    @pytest.fixture
    def baseline(self):
        return make_baseline_netlist(("fir", "fft"))

    def test_rep304_unknown_candidate_and_memory(self, baseline):
        netlist, _ = baseline
        report = run_lint(
            netlist, candidates=["fir", "ghost"], config_memory="nomem",
            elaborate=False,
        )
        messages = " | ".join(d.message for d in report.by_code("REP304"))
        assert "ghost" in messages and "nomem" in messages

    def test_rep304_duplicate_candidates(self, baseline):
        netlist, _ = baseline
        report = run_lint(netlist, candidates=["fir", "fir"], elaborate=False)
        assert any("2 times" in d.message for d in report.by_code("REP304"))

    def test_rep304_candidates_on_different_buses(self, baseline):
        netlist, _ = baseline
        netlist.add("bus2", Bus, protocol="split")
        netlist.component("fft").slave_of = "bus2"
        report = run_lint(netlist, candidates=["fir", "fft"], elaborate=False)
        assert any("limitation 1" in d.message for d in report.by_code("REP304"))

    def test_rep304_candidate_not_a_slave(self, baseline):
        netlist, _ = baseline
        netlist.component("fir").slave_of = None
        report = run_lint(netlist, candidates=["fir"], elaborate=False)
        assert any("not a slave" in d.message for d in report.by_code("REP304"))

    def test_rep305_rep306_candidate_missing_interface(self, baseline):
        netlist, _ = baseline
        report = run_lint(netlist, candidates=["fir", "cpu"], elaborate=False)
        assert any("get_low_add" in d.message for d in report.by_code("REP305"))
        assert any("BusSlaveIf" in d.message for d in report.by_code("REP306"))

    def test_valid_candidates_pass(self, baseline):
        netlist, _ = baseline
        report = run_lint(
            netlist, candidates=["fir", "fft"], config_memory="cfgmem",
        )
        assert report.diagnostics == [], report.render()


# ---------------------------------------------------------------------------
# Design-layer rules (elaborated hierarchy)
# ---------------------------------------------------------------------------

class _TwoWriters(Module):
    """Deliberate REP204 trigger: two processes writing one signal."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.flag = Signal(self.sim, False, name=f"{self.full_name}.flag")
        self.add_thread(self.raiser)
        self.add_thread(self.clearer)

    def raiser(self):
        self.flag.write(True)
        yield self.event("a")

    def clearer(self):
        self.flag.write(False)
        yield self.event("b")


class TestDesignRules:
    def test_rep201_unbound_port(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        Port(top, name="dangling")
        report = run_lint(design=top)
        diags = report.by_code("REP201")
        assert diags and diags[0].location == "top.dangling"

    def test_rep201_optional_port_skipped(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        Port(top, name="maybe", optional=True)
        assert run_lint(design=top).by_code("REP201") == []

    def test_rep201_chain_to_unbound_port(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        child = Module("child", parent=top)
        inner = Port(child, name="inner")
        outer = Port(top, name="outer")
        outer.bind(inner)
        report = run_lint(design=top)
        assert any("chains to unbound" in d.message for d in report.by_code("REP201"))

    def test_rep202_binding_cycle(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        a = Port(top, name="a")
        b = Port(top, name="b")
        a.bind(b)
        b.bind(a)
        report = run_lint(design=top)
        assert any("cycle" in d.message for d in report.by_code("REP202"))

    def test_rep203_interface_mismatch_through_chain(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        typed = Port(top, BusSlaveIf, name="typed")
        untyped = Port(top, name="untyped")
        typed.bind(untyped)
        untyped.bind(object())  # not a BusSlaveIf
        report = run_lint(design=top)
        diags = report.by_code("REP203")
        assert diags and "BusSlaveIf" in diags[0].message

    def test_rep204_multi_writer_signal_warning(self):
        sim = Simulator()
        top = _TwoWriters("top", sim=sim)
        report = run_lint(design=top)
        diags = report.by_code("REP204")
        assert diags and diags[0].severity == "warning"
        assert "2 processes" in diags[0].message
        assert diags[0].location == "top.flag"

    def test_rep205_overlapping_slaves_on_live_bus(self):
        sim = Simulator()
        bus = Bus("bus", sim=sim)
        m1 = Memory("m1", parent=bus, base=0x0, size_words=16)
        m2 = Memory("m2", parent=bus, base=0x10, size_words=16)
        bus._slaves.extend([m1, m2])  # bypass register_slave's guard
        report = run_lint(design=bus)
        assert any("overlap" in d.message for d in report.by_code("REP205"))

    def test_rep206_empty_bus_info(self):
        sim = Simulator()
        bus = Bus("bus", sim=sim)
        report = run_lint(design=bus)
        diags = report.by_code("REP206")
        assert diags and diags[0].severity == "info"


# ---------------------------------------------------------------------------
# DRCF-layer rules (elaborated fabrics)
# ---------------------------------------------------------------------------

class TestDrcfRules:
    @pytest.fixture
    def design(self):
        netlist, _ = make_reconfigurable_netlist(("fir", "fft"))
        return netlist.elaborate(Simulator())

    def test_rep302_region_with_no_backing_slave(self, design):
        drcf = design["drcf1"]
        drcf.contexts[0].params.config_addr = 0x9000_0000
        report = run_lint(design=design)
        assert any("no slave" in d.message for d in report.by_code("REP302"))

    def test_rep302_region_extends_past_memory_end(self, design):
        drcf = design["drcf1"]
        mem_end = design["cfgmem"].get_high_add()
        drcf.contexts[0].params.config_addr = mem_end - 3
        report = run_lint(design=design)
        assert any("extends past" in d.message for d in report.by_code("REP302"))

    def test_rep303_mutated_context_parameters(self, design):
        drcf = design["drcf1"]
        drcf.contexts[0].params.size_bytes = 0
        drcf.contexts[1].params.config_addr = -4
        report = run_lint(design=design)
        messages = " | ".join(d.message for d in report.by_code("REP303"))
        assert "not positive" in messages
        assert "negative" in messages

    def test_clean_design_has_no_drcf_findings(self, design):
        report = run_lint(design=design)
        assert report.diagnostics == [], report.render()


# ---------------------------------------------------------------------------
# Engine: selection, suppression, report rendering, registry
# ---------------------------------------------------------------------------

class TestEngine:
    @pytest.fixture
    def broken(self):
        netlist, _ = make_multi_fabric_netlist(
            {"f1": (("fir",), MORPHOSYS), "f2": (("fft",), MORPHOSYS)},
            config_region_bytes=64,
        )
        return netlist

    def test_ignore_suppresses_by_prefix(self, broken):
        report = run_lint(broken, ignore="REP3")
        assert report.by_code("REP301") == []

    def test_select_restricts_by_prefix(self, broken):
        report = run_lint(broken, select="REP3")
        assert report.codes() == ["REP301"]

    def test_ignore_wins_over_select(self, broken):
        report = run_lint(broken, select="REP3", ignore="REP301")
        assert report.diagnostics == []

    def test_select_accepts_iterables(self, broken):
        report = run_lint(broken, select=["REP301", "REP104"])
        assert report.codes() == ["REP301"]

    def test_render_contains_code_hint_and_summary(self, broken):
        text = run_lint(broken).render()
        assert "REP301" in text
        assert "hint:" in text
        assert "error(s)" in text

    def test_clean_render(self):
        assert "clean" in LintReport([]).render()

    def test_to_dicts_round_trip(self, broken):
        payload = run_lint(broken).to_dicts()
        assert payload and set(payload[0]) == {
            "code", "severity", "message", "location", "hint", "layer"
        }
        assert payload[0]["layer"] == "core"

    def test_severity_partitions(self, broken):
        report = run_lint(broken)
        assert len(report.diagnostics) == (
            len(report.errors) + len(report.warnings) + len(report.infos)
        )

    def test_duplicate_rule_code_rejected(self):
        from repro.analysis.lint import register_rule

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Rule("REP101", "netlist", "error", "dup", lambda ctx: ()))

    def test_all_codes_have_summaries(self):
        for code, entry in RULES.items():
            assert entry.summary, f"rule {code} has no summary"

    def test_diagnostic_render_single_line_without_hint(self):
        diag = Diagnostic("REP999", "error", "boom", "top.x")
        assert diag.render() == "REP999 error top.x: boom"

    def test_no_elaborate_skips_design_layers(self, broken):
        report = run_lint(broken, elaborate=False)
        assert report.by_code("REP301") == []  # needs the elaborated fabric


# ---------------------------------------------------------------------------
# Dataflow layer: select/ignore interplay and severity partitioning
# ---------------------------------------------------------------------------

class TestDataflowSelection:
    """The REP4xx rules obey the same suppression engine as every layer:
    ``ignore`` beats ``select``, even when ``select`` is more specific."""

    @pytest.fixture
    def racy(self):
        from .test_dataflow import Racy, _single

        return _single(Racy)

    @pytest.fixture
    def noisy(self):
        # carries REP402 + REP404 (BadMethod) and REP403 (Looping)
        from .test_dataflow import BadMethod, Looping

        netlist = Netlist("net")
        netlist.add("bad", BadMethod)
        netlist.add("loop", Looping)
        return netlist

    def test_dataflow_rules_need_opt_in(self, racy):
        report = run_lint(racy, select="REP4")
        assert report.diagnostics == []  # layer is off by default

    def test_ignore_wins_over_more_specific_select(self, noisy):
        report = run_lint(noisy, dataflow=True, select="REP4", ignore="REP403")
        codes = report.codes()
        assert "REP403" not in codes
        assert "REP402" in codes and "REP404" in codes

    def test_broad_ignore_beats_narrow_select(self, racy):
        report = run_lint(racy, dataflow=True, select="REP401", ignore="REP4")
        assert report.diagnostics == []

    def test_warning_rules_partition_as_warnings(self, noisy):
        report = run_lint(noisy, dataflow=True, select=["REP402", "REP403"])
        assert report.diagnostics, report.render()
        assert report.warnings == report.diagnostics
        assert not report.has_errors

    def test_error_rules_partition_as_errors(self, racy):
        report = run_lint(racy, dataflow=True, select="REP401")
        assert report.errors and not report.warnings
        assert report.has_errors

    def test_rep4_codes_registered_in_dataflow_layer(self):
        for code in ("REP401", "REP402", "REP403", "REP404", "REP405", "REP406"):
            assert code in RULES
            assert RULES[code].layer == "dataflow"


# ---------------------------------------------------------------------------
# Kernel introspection helpers the linter is built on
# ---------------------------------------------------------------------------

class TestIntrospectionHelpers:
    def test_binding_chain_bound(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        inner = Port(top, name="inner")
        outer = Port(top, name="outer")
        target = Memory("mem", parent=top, base=0, size_words=16)
        outer.bind(inner)
        inner.bind(target)
        chain, impl = outer.binding_chain()
        assert [p.name for p in chain] == ["outer", "inner"]
        assert impl is target

    def test_binding_chain_never_raises_on_cycle(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        a, b = Port(top, name="a"), Port(top, name="b")
        a.bind(b)
        b.bind(a)
        chain, impl = a.binding_chain()
        assert impl is None and len(chain) == 2

    def test_signals_of_and_processes_of(self):
        from repro.kernel import processes_of, signals_of

        sim = Simulator()
        mod = _TwoWriters("mod", sim=sim)
        assert set(signals_of(mod)) == {"flag"}
        procs = processes_of(mod)
        assert len(procs) == 2
        assert all(callable(p.fn) for p in procs)

    def test_deadlock_report_cross_references_static_rule(self):
        from repro.analysis import DeadlockReport

        report = DeadlockReport(deadlocked=True)
        assert DEADLOCK_RULE_CODE in report.render()
