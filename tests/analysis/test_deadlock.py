"""Deadlock diagnosis (Section 5.4 limitation 3)."""

from repro.analysis import diagnose
from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    make_reconfigurable_netlist,
)
from repro.kernel import Event, Simulator, ns
from repro.tech import VIRTEX2PRO


def run_soc(bus_protocol, **kwargs):
    netlist, info = make_reconfigurable_netlist(
        ("fir", "fft"), tech=VIRTEX2PRO, bus_protocol=bus_protocol, **kwargs
    )
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    jobs = frame_interleaved_jobs(("fir", "fft"), 1, seed=5)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    return sim, design, runner, jobs


class TestPaperDeadlockCondition:
    def test_blocking_shared_bus_deadlocks(self):
        sim, design, runner, jobs = run_soc("blocking")
        report = diagnose(sim, buses=[design["system_bus"]])
        assert report.deadlocked
        assert len(runner.results) < len(jobs)
        # The wait-for chain of the paper: DRCF queued behind the CPU that
        # holds the bus for its own call into the DRCF.
        assert any("drcf1" in chain and "cpu" in chain for chain in report.chains)
        assert "DEADLOCK" in report.render()

    def test_split_transactions_avoid_deadlock(self):
        sim, design, runner, jobs = run_soc("split")
        report = diagnose(sim, buses=[design["system_bus"]])
        assert not report.deadlocked
        assert len(runner.results) == len(jobs)
        assert "no deadlock" in report.render()

    def test_dedicated_config_bus_avoids_deadlock(self):
        sim, design, runner, jobs = run_soc("blocking", dedicated_config_bus=True)
        report = diagnose(sim, buses=[design["system_bus"], design["config_bus"]])
        assert not report.deadlocked
        assert len(runner.results) == len(jobs)


class TestDiagnosisMechanics:
    def test_daemons_ignored(self):
        sim = Simulator()
        ev = Event(sim, "never")

        def server():
            while True:
                yield ev

        sim.spawn("server", server, daemon=True)
        sim.run()
        assert not diagnose(sim).deadlocked

    def test_timeout_waiters_not_deadlock(self):
        sim = Simulator()

        def sleeper():
            yield ns(1_000_000)

        sim.spawn("sleeper", sleeper)
        sim.run(until=ns(10))
        report = diagnose(sim)
        assert not report.deadlocked

    def test_event_waiter_is_deadlock(self):
        sim = Simulator()
        ev = Event(sim, "never")

        def stuck():
            yield ev

        sim.spawn("stuck", stuck)
        sim.run()
        report = diagnose(sim)
        assert report.deadlocked
        assert report.blocked[0].name == "stuck"
        assert "never" in report.blocked[0].waiting_on

    def test_pending_timed_activity_not_deadlock(self):
        # If the run was merely bounded by `until`, blocked processes with
        # pending timed events are not a deadlock.
        sim = Simulator()
        ev = Event(sim, "later")

        def waiter():
            yield ev

        def notifier():
            yield ns(100)
            ev.notify()

        sim.spawn("w", waiter)
        sim.spawn("n", notifier)
        sim.run(until=ns(10))
        assert not diagnose(sim).deadlocked
