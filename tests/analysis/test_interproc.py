"""Interprocedural wait-effect analysis and the REP6xx lint layer.

Covers the per-callee summaries, the rendezvous-safety proof that widens
compiled-thread admission beyond the audit registry, the lock-order /
acquire-release traces, and the four interproc lint rules — including the
acceptance pair: REP601 statically predicts exactly the Section 5.4
deadlock ``examples/deadlock_demo.py`` hits dynamically, and the two
reports cross-reference each other.

Classes live at file scope because the analyzers read bodies with
``inspect.getsource``.
"""

import pytest

from repro.analysis.deadlock import diagnose
from repro.analysis.interproc import (
    acquire_sites,
    lock_order_trace,
    prove_rendezvous_safe,
    release_closure,
    summarize_function,
)
from repro.analysis.lint import (
    DEADLOCK_RULE_CODE,
    RULES,
    STATIC_DEADLOCK_RULE_CODE,
    run_lint,
)
from repro.apps import JobRunner, frame_interleaved_jobs, make_reconfigurable_netlist
from repro.kernel import (
    Event,
    Fifo,
    Module,
    Mutex,
    Semaphore,
    Simulator,
    ns,
    processes_of,
)
from repro.tech import VIRTEX2PRO

REP6XX = (STATIC_DEADLOCK_RULE_CODE, "REP602", "REP603", "REP604")


def interproc_lint(design):
    return run_lint(design=design, dataflow=True, cfg=True, interproc=True)


# ---------------------------------------------------------------------------
# Subject classes
# ---------------------------------------------------------------------------

class HandshakeChannel:
    """A user-defined rendezvous channel — not in the audit registry."""

    def __init__(self, sim, name="hs"):
        self.sim = sim
        self._full = Event(sim, f"{name}.full")
        self._empty = Event(sim, f"{name}.empty")
        self._item = None
        self._has = False

    def _publish(self):
        self._has = True
        self._full.notify_delta()

    def send(self, item):
        while self._has:
            yield self._empty
        self._item = item
        self._publish()  # notify through a helper: the scan must splice it

    def recv(self):
        while not self._has:
            yield self._full
        item = self._item
        self._has = False
        self._empty.notify_delta()
        return item

    def drain_forever(self):
        while True:
            yield from self.recv()
            yield from self.drain_forever()  # recursion: must degrade


class LocalEventChannel:
    """Blocks on an event created in the call frame: unprovable."""

    def __init__(self, sim):
        self.sim = sim

    def take(self):
        gate = Event(self.sim, "gate")
        yield gate


class InvertedLocksTop(Module):
    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.m1 = Mutex(sim, "m1")
        self.m2 = Mutex(sim, "m2")
        self.add_thread(self.worker_a)
        self.add_thread(self.worker_b)

    def worker_a(self):
        yield from self.m1.lock("a")
        yield from self.m2.lock("a")
        self.m2.unlock()
        self.m1.unlock()

    def worker_b(self):
        yield from self.m2.lock("b")
        yield from self.m1.lock("b")
        self.m1.unlock()
        self.m2.unlock()


class OrderedLocksTop(InvertedLocksTop):
    """Same two mutexes, one global order: no inversion to report."""

    def worker_b(self):
        yield from self.m1.lock("b")
        yield from self.m2.lock("b")
        self.m2.unlock()
        self.m1.unlock()


class LonelyAcquireTop(Module):
    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.sem = Semaphore(sim, 0, "sem")
        self.add_thread(self.worker)
        self.add_thread(self.other)

    def worker(self):
        yield from self.sem.wait()

    def other(self):
        yield ns(5)


class PostedAcquireTop(LonelyAcquireTop):
    def other(self):
        yield ns(5)
        self.sem.post()


class BuriedReleaseTop(LonelyAcquireTop):
    """The post hides two calls deep inside a foreign channel method."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.fifo = Fifo(sim, capacity=2, name="f")

    def _kick(self):
        self.sem.post()

    def other(self):
        yield ns(5)
        self._kick()


class UnresolvedLockTop(Module):
    """Locks through a container lookup the resolver cannot follow."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.locks = {"a": Mutex(sim, "a")}
        self.add_thread(self.worker)

    def worker(self):
        yield from self.locks.popitem()[1].lock("w")


# ---------------------------------------------------------------------------
# Wait-effect summaries
# ---------------------------------------------------------------------------

class TestWaitEffectSummaries:
    def test_channel_send_summary(self):
        summary = summarize_function(HandshakeChannel, HandshakeChannel.send)
        assert not summary.unresolved
        assert summary.wait_kinds == {"event"}
        assert ("_empty",) in summary.waits_on
        # The notify happens inside the _publish helper — spliced in.
        assert ("_full",) in summary.notifies

    def test_summary_memoized_per_code_and_owner(self):
        first = summarize_function(HandshakeChannel, HandshakeChannel.recv)
        again = summarize_function(HandshakeChannel, HandshakeChannel.recv)
        assert first is again

    def test_mutex_unlock_counts_as_release(self):
        summary = summarize_function(
            InvertedLocksTop, InvertedLocksTop.worker_a
        )
        assert (("m1",), "unlock") in summary.releases
        assert (("m2",), "unlock") in summary.releases
        assert (("m1",), "lock") in summary.acquires

    def test_non_function_degrades_unresolved(self):
        summary = summarize_function(None, object())
        assert summary.unresolved
        assert summary.reason


# ---------------------------------------------------------------------------
# The rendezvous-safety proof (admission side)
# ---------------------------------------------------------------------------

class TestProveRendezvousSafe:
    def test_user_channel_proves_safe(self):
        sim = Simulator()
        chan = HandshakeChannel(sim)
        assert prove_rendezvous_safe(chan, "send") is None
        assert prove_rendezvous_safe(chan, "recv") is None

    def test_registry_seed_accepts_without_analysis(self):
        sim = Simulator()
        mutex = Mutex(sim, "m")
        # Mutex.lock waits on a per-waiter grant token the analyzer can
        # never resolve — only the seed admits it.
        assert prove_rendezvous_safe(mutex, "lock") is None

    def test_local_event_wait_rejected_with_path(self):
        sim = Simulator()
        chan = LocalEventChannel(sim)
        rejection = prove_rendezvous_safe(chan, "take")
        assert rejection is not None
        assert "LocalEventChannel.take" in rejection

    def test_recursive_blocking_call_rejected(self):
        sim = Simulator()
        chan = HandshakeChannel(sim)
        rejection = prove_rendezvous_safe(chan, "drain_forever")
        assert rejection is not None
        assert "recursive" in rejection

    def test_missing_method_rejected(self):
        sim = Simulator()
        chan = HandshakeChannel(sim)
        rejection = prove_rendezvous_safe(chan, "no_such_method")
        assert rejection is not None


# ---------------------------------------------------------------------------
# Lock-order / acquire-release traces
# ---------------------------------------------------------------------------

class TestTraces:
    def _threads(self, top):
        return {p.name.rsplit(".", 1)[-1]: p for p in processes_of(top)}

    def test_lock_order_trace_tracks_held_set(self):
        sim = Simulator()
        top = InvertedLocksTop("t", sim)
        trace = lock_order_trace(self._threads(top)["worker_a"])
        assert trace.unresolved is None
        assert [a.path for a in trace.acquisitions] == [("m1",), ("m2",)]
        assert trace.acquisitions[0].held == ()
        assert trace.acquisitions[1].held == (top.m1,)

    def test_unresolvable_lock_degrades_trace(self):
        sim = Simulator()
        top = UnresolvedLockTop("t", sim)
        trace = lock_order_trace(self._threads(top)["worker"])
        assert trace.unresolved is not None

    def test_acquire_sites_resolve_live_targets(self):
        sim = Simulator()
        top = LonelyAcquireTop("t", sim)
        sites, reason = acquire_sites(self._threads(top)["worker"])
        assert reason is None
        assert [(s.method, s.target) for s in sites] == [("wait", top.sem)]

    def test_release_closure_follows_foreign_calls(self):
        sim = Simulator()
        top = BuriedReleaseTop("t", sim)
        thread = self._threads(top)["other"]
        released, complete = release_closure(top, thread.fn)
        assert complete
        assert id(top.sem) in released


# ---------------------------------------------------------------------------
# REP601 — acceptance: static prediction of the Section 5.4 deadlock
# ---------------------------------------------------------------------------

def _elaborated(bus_protocol, **kwargs):
    netlist, info = make_reconfigurable_netlist(
        ("fir", "fft"), tech=VIRTEX2PRO, bus_protocol=bus_protocol, **kwargs
    )
    sim = Simulator()
    design = netlist.elaborate(sim)
    return sim, design, info


class TestStaticDeadlockRule:
    def test_fires_on_blocking_config_bus(self):
        _, design, _ = _elaborated("blocking")
        report = interproc_lint(design.top)
        diags = report.by_code(STATIC_DEADLOCK_RULE_CODE)
        assert diags, report.render()
        assert diags[0].severity == "error"
        assert "wait-for cycle" in diags[0].message
        assert "system_bus" in diags[0].message

    @pytest.mark.parametrize(
        "kwargs",
        [{"bus_protocol": "split"}, {"bus_protocol": "blocking", "dedicated_config_bus": True}],
        ids=["split", "dedicated"],
    )
    def test_silent_on_both_remedies(self, kwargs):
        _, design, _ = _elaborated(**kwargs)
        report = interproc_lint(design.top)
        assert not report.by_code(STATIC_DEADLOCK_RULE_CODE), report.render()

    def test_static_prediction_matches_dynamic_diagnosis(self):
        """The cross-reference contract: the architecture REP601 flags is
        the one that deadlocks at runtime, and each report names the
        other's diagnostic."""
        sim, design, info = _elaborated("blocking")
        lint_report = interproc_lint(design.top)
        assert lint_report.by_code(STATIC_DEADLOCK_RULE_CODE)

        jobs = frame_interleaved_jobs(("fir", "fft"), n_frames=1, seed=5)
        runner = JobRunner(info.accel_bases, info.buffer_words)
        design["cpu"].run_task(runner.task(jobs), name="workload")
        sim.run(max_wall_s=30.0)
        dynamic = diagnose(sim, buses=[design["system_bus"]])
        assert dynamic.deadlocked
        # Dynamic report -> static rules, both layers.
        assert dynamic.static_rule == DEADLOCK_RULE_CODE
        assert dynamic.interproc_rule == STATIC_DEADLOCK_RULE_CODE
        rendered = dynamic.render()
        assert DEADLOCK_RULE_CODE in rendered
        assert STATIC_DEADLOCK_RULE_CODE in rendered
        # Static rule -> runtime diagnosis.
        message = lint_report.by_code(STATIC_DEADLOCK_RULE_CODE)[0].message
        assert DEADLOCK_RULE_CODE in message
        assert "deadlock.diagnose" in message


# ---------------------------------------------------------------------------
# REP602 / REP603 / REP604
# ---------------------------------------------------------------------------

class TestLockOrderRule:
    def test_inversion_flagged_once(self):
        sim = Simulator()
        top = InvertedLocksTop("t", sim)
        diags = interproc_lint(top).by_code("REP602")
        assert len(diags) == 1
        assert diags[0].severity == "warning"
        assert "opposite order" in diags[0].message

    def test_consistent_order_is_silent(self):
        sim = Simulator()
        top = OrderedLocksTop("t", sim)
        assert not interproc_lint(top).by_code("REP602")


class TestBlockingWhileLockedRule:
    def test_transport_under_lock_on_config_bus_flagged(self):
        sim, design, _ = _elaborated("blocking")

        class Locker(Module):
            def __init__(self, name, sim, parent, bus):
                super().__init__(name, sim=sim, parent=parent)
                self.m = Mutex(sim, "m")
                self.bus = bus
                self.add_thread(self.task)

            def task(self):
                yield from self.m.lock("task")
                yield from self.bus.write(0x0, [1])
                self.m.unlock()

        Locker("locker", sim, design.top, design["system_bus"])
        diags = interproc_lint(design.top).by_code("REP603")
        assert diags
        assert "holding mutex" in diags[0].message
        assert "configuration traffic" in diags[0].message

    def test_silent_without_config_path_bus(self):
        """Transport under a lock on a bus no DRCF fetches over: silent."""
        sim = Simulator()
        top = InvertedLocksTop("t", sim)  # no DRCF in the design at all
        assert not interproc_lint(top).by_code("REP603")


class TestReleaseFreeAcquireRule:
    def test_release_free_acquire_flagged(self):
        sim = Simulator()
        top = LonelyAcquireTop("t", sim)
        diags = interproc_lint(top).by_code("REP604")
        assert len(diags) == 1
        assert ".post()" in diags[0].message

    def test_posted_acquire_is_silent(self):
        sim = Simulator()
        top = PostedAcquireTop("t", sim)
        assert not interproc_lint(top).by_code("REP604")

    def test_buried_release_is_found(self):
        sim = Simulator()
        top = BuriedReleaseTop("t", sim)
        assert not interproc_lint(top).by_code("REP604")

    def test_unresolved_body_silences_whole_rule(self):
        sim = Simulator()
        top = UnresolvedLockTop("t", sim)
        assert not interproc_lint(top).by_code("REP604")


# ---------------------------------------------------------------------------
# Registry / layer plumbing
# ---------------------------------------------------------------------------

class TestRegistry:
    @pytest.mark.parametrize("code", REP6XX)
    def test_every_interproc_rule_is_explainable(self, code):
        entry = RULES[code]
        assert entry.layer == "interproc"
        assert entry.summary
        assert entry.example
        assert entry.check.__doc__

    def test_interproc_layer_is_opt_in(self):
        sim = Simulator()
        top = InvertedLocksTop("t", sim)
        without = run_lint(design=top, dataflow=True, cfg=True)
        assert not any(d.code.startswith("REP6") for d in without.diagnostics)
