"""Two CPUs contending for one time-shared fabric.

The DRCF is "a time-slice scheduled application specific hardware block"
(Section 5.1): independent masters invoking different contexts serialize
on the fabric, and the instrumentation attributes the waiting correctly.
"""

import pytest

from repro.apps import (
    JobRunner,
    JobSpec,
    golden_outputs,
    make_reconfigurable_netlist,
)
from repro.cpu import Processor
from repro.kernel import Simulator, ZERO_TIME
from repro.tech import MORPHOSYS, VARICORE


def two_cpu_system(tech):
    netlist, info = make_reconfigurable_netlist(("fir", "xtea"), tech=tech)
    netlist.add("cpu2", Processor, master_of="system_bus", clock_freq_hz=200e6)
    sim = Simulator()
    design = netlist.elaborate(sim)
    return sim, design, info


def jobs_for(accel, n):
    if accel == "fir":
        return [
            JobSpec("fir", [10 * i + 1, 2, 3, 4], param=2, coefs=[1 << 14, 1 << 13],
                    label=f"fir{i}")
            for i in range(n)
        ]
    return [
        JobSpec("xtea", [5 * i + 1, 7], param=0, coefs=[1, 2, 3, 4], label=f"xtea{i}")
        for i in range(n)
    ]


class TestConcurrentMasters:
    @pytest.fixture(scope="class")
    def run_result(self):
        sim, design, info = two_cpu_system(VARICORE)
        runner1 = JobRunner(info.accel_bases, info.buffer_words)
        runner2 = JobRunner(info.accel_bases, info.buffer_words)
        design["cpu"].run_task(runner1.task(jobs_for("fir", 3)), name="wl1")
        design["cpu2"].run_task(runner2.task(jobs_for("xtea", 3)), name="wl2")
        sim.run()
        return sim, design, runner1, runner2

    def test_both_streams_complete_correctly(self, run_result):
        sim, design, runner1, runner2 = run_result
        assert len(runner1.results) == 3 and len(runner2.results) == 3
        for runner in (runner1, runner2):
            for result in runner.results:
                assert result.outputs == golden_outputs(result.spec), result.spec.label

    def test_fabric_serialized_interleaved_streams(self, run_result):
        sim, design, runner1, runner2 = run_result
        stats = design["drcf1"].stats
        # Both contexts were exercised; switching happened because the two
        # masters interleave on a single-context technology.
        assert stats.per_context["fir"].calls > 0
        assert stats.per_context["xtea"].calls > 0
        assert stats.total_switches >= 2
        # Calls spent time waiting on switches triggered by the other master.
        total_wait = ZERO_TIME
        for context_stats in stats.per_context.values():
            total_wait = total_wait + context_stats.call_wait_time
        assert total_wait > ZERO_TIME

    def test_multi_context_device_reduces_cross_master_thrash(self):
        makespans = {}
        switches = {}
        for tech in (VARICORE, MORPHOSYS):
            sim, design, info = two_cpu_system(tech)
            runner1 = JobRunner(info.accel_bases, info.buffer_words)
            runner2 = JobRunner(info.accel_bases, info.buffer_words)
            design["cpu"].run_task(runner1.task(jobs_for("fir", 3)), name="wl1")
            design["cpu2"].run_task(runner2.task(jobs_for("xtea", 3)), name="wl2")
            sim.run()
            makespans[tech.name] = sim.now
            switches[tech.name] = design["drcf1"].stats.fetch_misses
        # Two resident contexts absorb the cross-master alternation: only
        # the two cold loads miss, vs continual refetching on one slot.
        assert switches["morphosys"] == 2
        assert switches["varicore"] > 2
        assert makespans["morphosys"] < makespans["varicore"]

    def test_deterministic_under_contention(self):
        results = []
        for _ in range(2):
            sim, design, info = two_cpu_system(VARICORE)
            runner1 = JobRunner(info.accel_bases, info.buffer_words)
            runner2 = JobRunner(info.accel_bases, info.buffer_words)
            design["cpu"].run_task(runner1.task(jobs_for("fir", 2)), name="wl1")
            design["cpu2"].run_task(runner2.task(jobs_for("xtea", 2)), name="wl2")
            sim.run()
            results.append(
                (
                    sim.now,
                    [r.end_ns for r in runner1.results],
                    [r.end_ns for r in runner2.results],
                )
            )
        assert results[0] == results[1]
