"""Full-system integration: both Figure 1 architectures on real workloads."""

import pytest

from repro.apps import (
    JobRunner,
    batched_jobs,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
    switch_count_lower_bound,
)
from repro.kernel import Simulator
from repro.tech import MORPHOSYS, VARICORE, VIRTEX2PRO

ACCELS = ("fir", "fft", "viterbi", "xtea")


def run_workload(netlist, info, jobs):
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="workload")
    sim.run()
    return sim, design, runner


@pytest.fixture(scope="module")
def jobs():
    return frame_interleaved_jobs(ACCELS, n_frames=2, seed=7)


class TestFunctionalEquivalence:
    def test_baseline_matches_executable_spec(self, jobs):
        netlist, info = make_baseline_netlist(ACCELS)
        _, _, runner = run_workload(netlist, info, jobs)
        assert len(runner.results) == len(jobs)
        for result in runner.results:
            assert result.outputs == golden_outputs(result.spec), result.spec.label

    @pytest.mark.parametrize("tech", [VIRTEX2PRO, VARICORE, MORPHOSYS], ids=lambda t: t.name)
    def test_drcf_matches_executable_spec(self, jobs, tech):
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=tech)
        _, _, runner = run_workload(netlist, info, jobs)
        assert len(runner.results) == len(jobs)
        for result in runner.results:
            assert result.outputs == golden_outputs(result.spec), result.spec.label


class TestOverheadShape:
    def test_drcf_adds_only_reconfig_overhead(self, jobs):
        base_netlist, base_info = make_baseline_netlist(ACCELS)
        base_sim, _, base_runner = run_workload(base_netlist, base_info, jobs)

        netlist, info = make_reconfigurable_netlist(ACCELS, tech=MORPHOSYS)
        sim, design, runner = run_workload(netlist, info, jobs)
        drcf = design[info.drcf_name]

        baseline_us = base_sim.now.to_us()
        drcf_us = sim.now.to_us()
        assert drcf_us > baseline_us
        # The slowdown is bounded by reconfig time + fabric derating: a
        # loose sanity band, not an exact equality.
        reconfig_us = drcf.stats.total_reconfig_time.to_us()
        assert drcf_us <= baseline_us * 3 + reconfig_us * 2

    def test_switch_count_matches_workload_lower_bound(self, jobs):
        # Single-slot technology: every change of block is a switch.
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=VARICORE)
        _, design, _ = run_workload(netlist, info, jobs)
        stats = design[info.drcf_name].stats
        assert stats.total_switches == switch_count_lower_bound(jobs)
        assert stats.fetch_misses == switch_count_lower_bound(jobs)

    def test_batched_workload_fewer_switches_and_faster(self):
        inter = frame_interleaved_jobs(ACCELS, 2, seed=7)
        batch = batched_jobs(ACCELS, 2, seed=7)
        times = {}
        switches = {}
        for label, wl in (("inter", inter), ("batch", batch)):
            netlist, info = make_reconfigurable_netlist(ACCELS, tech=VARICORE)
            sim, design, _ = run_workload(netlist, info, wl)
            times[label] = sim.now
            switches[label] = design[info.drcf_name].stats.total_switches
        assert switches["batch"] < switches["inter"]
        assert times["batch"] < times["inter"]

    def test_technology_ordering_on_switch_heavy_workload(self, jobs):
        makespans = {}
        for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
            netlist, info = make_reconfigurable_netlist(ACCELS, tech=tech)
            sim, _, _ = run_workload(netlist, info, jobs)
            makespans[tech.name] = sim.now
        # Coarse-grain multi-context beats medium beats fine-grain
        # single-context when contexts alternate every invocation.
        assert makespans["morphosys"] < makespans["varicore"] < makespans["virtex2pro"]


class TestTrafficAccounting:
    def test_config_words_on_bus_match_drcf_accounting(self, jobs):
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=VARICORE)
        sim, design, _ = run_workload(netlist, info, jobs)
        drcf = design[info.drcf_name]
        bus = design[info.bus_name]
        assert bus.monitor.words_by_tag("config") == drcf.stats.total_config_words

    def test_config_reads_target_registered_regions(self, jobs):
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=VARICORE)
        sim, design, _ = run_workload(netlist, info, jobs)
        cfgmem = design[info.config_memory_name]
        for txn in design[info.bus_name].monitor.transactions:
            if txn.has_tag("config"):
                context = cfgmem.context_for_address(txn.addr)
                assert context is not None
                assert txn.has_tag(context)

    def test_baseline_has_no_config_traffic(self, jobs):
        netlist, info = make_baseline_netlist(ACCELS)
        sim, design, _ = run_workload(netlist, info, jobs)
        assert design[info.bus_name].monitor.words_by_tag("config") == 0


class TestDeterminism:
    def test_identical_runs_bit_identical(self, jobs):
        results = []
        for _ in range(2):
            netlist, info = make_reconfigurable_netlist(ACCELS, tech=MORPHOSYS)
            sim, design, runner = run_workload(netlist, info, jobs)
            results.append(
                (
                    sim.now,
                    [tuple(r.outputs) for r in runner.results],
                    design[info.drcf_name].stats.summary(),
                )
            )
        assert results[0] == results[1]
