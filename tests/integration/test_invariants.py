"""Property-based invariants of the context scheduler over random access
sequences (the core correctness arguments of the methodology)."""

from hypothesis import given, settings, strategies as st

from repro.core import ContextPrefetcher, RoundRobinPredictor
from repro.kernel import ZERO_TIME
from tests.core.helpers import DrcfRig, small_tech

access_sequences = st.lists(st.integers(0, 3), min_size=1, max_size=12)
slot_counts = st.integers(1, 3)


def run_sequence(rig, accesses, payload_offset=4):
    """Drive reads/writes for each access; returns written-value model."""
    model = {}

    def body():
        for step, index in enumerate(accesses):
            value = 1000 + step
            yield from rig.master_write(rig.addr(index, payload_offset), value)
            model[index] = value
            data = yield from rig.master_read(rig.addr(index, payload_offset))
            assert data == [model[index]]

    rig.sim.spawn("p", body)
    rig.sim.run()
    return model


class TestSchedulerInvariants:
    @given(access_sequences, slot_counts)
    @settings(max_examples=30, deadline=None)
    def test_traffic_switches_and_residency(self, accesses, n_slots):
        tech = small_tech(context_slots=n_slots)
        rig = DrcfRig(n_contexts=4, tech=tech, context_gates=400)
        run_sequence(rig, accesses)
        stats = rig.drcf.stats
        words_per_context = rig.drcf.contexts[0].params.config_words(4)

        # 1. Bus config traffic equals fetch misses times context words.
        assert (
            rig.bus.monitor.words_by_tag("config")
            == stats.fetch_misses * words_per_context
            == stats.total_config_words
        )

        # 2. Every change of target context is a switch; repeats are free.
        expected_switches = 1 + sum(
            1 for a, b in zip(accesses, accesses[1:]) if a != b
        )
        assert stats.total_switches == expected_switches
        assert stats.fetch_misses + stats.resident_hits == expected_switches

        # 3. With a single slot every switch is a miss.
        if n_slots == 1:
            assert stats.resident_hits == 0

        # 4. Residency bounded by slot count; last context resident+active.
        resident = rig.drcf.resident_context_names()
        assert len(resident) <= n_slots
        assert rig.drcf.active_context_name == f"s{accesses[-1]}"
        assert f"s{accesses[-1]}" in resident

        # 5. Instrumentation is conservative: busy components of the
        # observation window never exceed the wall clock.
        total = rig.sim.now
        assert stats.total_reconfig_time <= total
        assert stats.total_active_time <= total

        # 6. Per-context calls sum to the number of accesses (1 write +
        # 1 read each).
        assert stats.total_calls == 2 * len(accesses)

    @given(access_sequences)
    @settings(max_examples=15, deadline=None)
    def test_functional_state_preserved_across_switches(self, accesses):
        """Context switching must never corrupt wrapped-module state."""
        rig = DrcfRig(n_contexts=4, tech=small_tech(context_slots=1), context_gates=300)
        final_model = run_sequence(rig, accesses)

        # Read everything back once more after arbitrary switching.
        def verify():
            for index, value in sorted(final_model.items()):
                data = yield from rig.master_read(rig.addr(index, 4))
                assert data == [value]

        rig.sim.spawn("v", verify)
        rig.sim.run()

    @given(access_sequences, st.integers(16, 128))
    @settings(max_examples=15, deadline=None)
    def test_burst_length_does_not_change_total_traffic(self, accesses, burst):
        results = []
        for b in (burst, 64):
            rig = DrcfRig(
                n_contexts=4,
                tech=small_tech(context_slots=1),
                context_gates=500,
                config_burst_words=b,
            )
            run_sequence(rig, accesses)
            results.append(rig.bus.monitor.words_by_tag("config"))
        assert results[0] == results[1]


class TestPrefetchInvariants:
    @given(access_sequences)
    @settings(max_examples=15, deadline=None)
    def test_prefetch_never_changes_results_or_foreground_counts(self, accesses):
        tech = small_tech(context_slots=2, background_load=True)

        def run(with_prefetch):
            rig = DrcfRig(n_contexts=4, tech=tech, context_gates=300)
            if with_prefetch:
                ContextPrefetcher(
                    "pf",
                    sim=rig.sim,
                    drcf=rig.drcf,
                    predictor=RoundRobinPredictor([f"s{i}" for i in range(4)]),
                )
            model = run_sequence(rig, accesses)
            return model, rig.drcf.stats

        model_plain, stats_plain = run(False)
        model_pf, stats_pf = run(True)
        # Functional results identical — prefetch (even mispredicting, which
        # can pollute slots and *add* misses) never changes behaviour.
        assert model_plain == model_pf
        # Foreground switch count is workload-determined, prefetch or not.
        assert stats_pf.total_switches == stats_plain.total_switches

    @given(access_sequences)
    @settings(max_examples=15, deadline=None)
    def test_oracle_prefetch_reduces_to_single_miss(self, accesses):
        """With a perfect next-context oracle and 2 slots, only the very
        first context load is a foreground fetch miss."""
        from repro.core import NextContextPredictor

        switch_seq = []
        for index in accesses:
            name = f"s{index}"
            if not switch_seq or switch_seq[-1] != name:
                switch_seq.append(name)

        class Oracle(NextContextPredictor):
            def predict(self, history):
                if len(history) < len(switch_seq):
                    return switch_seq[len(history)]
                return None

        tech = small_tech(context_slots=2, background_load=True)
        rig = DrcfRig(n_contexts=4, tech=tech, context_gates=300)
        ContextPrefetcher("pf", sim=rig.sim, drcf=rig.drcf, predictor=Oracle())
        run_sequence(rig, accesses)
        stats = rig.drcf.stats
        assert stats.fetch_misses == 1
        # Every later switch was served from a resident slot — either just
        # prefetched or still resident from an earlier activation.
        assert stats.resident_hits == len(switch_seq) - 1
        if len(switch_seq) > 1:
            assert stats.prefetch_hits >= 1
