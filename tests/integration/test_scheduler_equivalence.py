"""Generic-vs-specialized scheduler equivalence matrix.

Every design here runs twice — ``Simulator(specialize=True)`` and
``Simulator(specialize=False)`` — under a per-instant trace hook that
serializes the committed value of every signal in the hierarchy into a
running digest.  The two runs must produce byte-identical observable
traces and equal ``timed_activations``; the fast path may only *shrink*
``delta_cycles`` / ``signal_updates`` / ``process_executions``, and every
skipped update round trip must be accounted for in
``stats.specialized_commits``.

The matrix covers the paper's SoC architectures (the Figure 1 baseline
and DRCF netlists the examples are built from, under the real frame
workload) and the dedicated combinational designs from
``tests.kernel.test_specialize`` that actually engage the fast path.
"""

import hashlib

import pytest

from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
)
from repro.bus import Bus, Memory
from repro.kernel import Clock, Fifo, Module, Port, Simulator, ns
from repro.kernel.signal import Signal, signals_of
from repro.kernel.tracing import VcdTracer
from repro.tech import VIRTEX2PRO
from tests.kernel.test_compiled_threads import ClockAnyOfTop, IrqTop, UserChannelTop
from tests.kernel.test_specialize import ChainTop, DiamondTop, EdgeTapsTop

ACCELS = ("fir", "xtea")

#: Counters the fast path is allowed to shrink (and only shrink) — the
#: skipped work shows up in ``specialized_commits`` instead.
SHRINKABLE = ("delta_cycles", "signal_updates", "process_executions")


def _hierarchy_signals(sim):
    found = []
    for top in sim._top_modules:
        for module in (top, *top.descendants()):
            for attr, sig in sorted(signals_of(module).items()):
                found.append((f"{module.full_name}.{attr}", sig))
    return found


def _observe(sim):
    """Attach a per-instant digest hook; returns the result accessor."""
    signals = _hierarchy_signals(sim)
    digest = hashlib.sha256()
    count = [0]

    def hook(now):
        count[0] += 1
        line = f"{now.femtoseconds}|" + "|".join(
            f"{name}={sig.read()!r}" for name, sig in signals
        )
        digest.update(line.encode())

    sim.trace_hooks.append(hook)

    def result():
        return {
            "instants": count[0],
            "trace_sha": digest.hexdigest(),
            "final": {name: sig.read() for name, sig in signals},
            "end_fs": sim.now.femtoseconds,
            "stats": sim.stats.as_dict(),
        }

    return result


def _assert_equivalent(fast, generic, *, expect_fast_path):
    assert fast["trace_sha"] == generic["trace_sha"]
    assert fast["instants"] == generic["instants"]
    assert fast["final"] == generic["final"]
    assert fast["end_fs"] == generic["end_fs"]
    fs, gs = fast["stats"], generic["stats"]
    assert fs["timed_activations"] == gs["timed_activations"]
    for counter in SHRINKABLE:
        assert fs[counter] <= gs[counter], counter
    assert gs["specialized_commits"] == 0
    if expect_fast_path:
        # Skipped update round trips are reported, not silently folded in.
        # (No exact identity against generic signal_updates: that counter
        # also counts absorbed equal-value commits, which the fast path
        # rejects before they ever reach a queue.)
        assert fs["specialized_commits"] > 0
    else:
        assert fs["specialized_commits"] == 0


class _RegisteredStage(Module):
    """One registered pipeline stage fed entirely through ports.

    The clock and both data nets arrive as bindings, so the analyzer only
    sees this stage's traffic by chasing ``Port.binding_chain()``.
    """

    def __init__(self, name, parent, gain):
        super().__init__(name, parent=parent)
        self.gain = gain
        self.clk = Port(self, None, name="clk")
        self.inp = Port(self, None, name="inp")
        self.out = Port(self, None, name="out")

    def connect(self):
        # Sensitivity lists resolve events eagerly, so the process is
        # registered only once the clock port is bound.
        self.add_method(self.tick, sensitivity=(self.clk.posedge,), initialize=False)

    def tick(self):
        self.out.write(self.inp.read() * self.gain)


class ClockedPortPipelineTop(Module):
    """A Clock fanned out through ports to registered pipeline stages.

    Inter-stage nets are register-style — read and written only by
    posedge-sensitive methods — so the plan must prove the clock thread a
    periodic single writer, chain the clock net, and commit the pipeline
    registers without notification scans."""

    def __init__(self, name, sim, depth=3):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", ns(10), parent=self)
        self.d = Signal(self.sim, 1, name=f"{name}.d")
        feed = self.d
        self.stages = []
        for i in range(depth):
            out = Signal(self.sim, 0, name=f"{name}.n{i}")
            setattr(self, f"n{i}", out)
            stage = _RegisteredStage(f"s{i}", self, gain=i + 2)
            stage.clk.bind(self.clk.signal)
            stage.inp.bind(feed)
            stage.out.bind(out)
            stage.connect()
            feed = out
            self.stages.append(stage)


class TestClockedPortBoundDesign:
    """The PR-7 admission extension end to end: a clocked, port-bound
    pipeline rides the fast path with a byte-identical trace."""

    def test_byte_identical_traces(self):
        results = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            ClockedPortPipelineTop("t", sim)
            result = _observe(sim)
            sim.run(until=ns(200))
            assert sim._specialized is specialize
            results[specialize] = result()
        _assert_equivalent(results[True], results[False], expect_fast_path=True)
        # The pipeline registers really did skip the notification scan.
        assert results[True]["stats"]["register_commits"] > 0
        assert results[False]["stats"]["register_commits"] == 0


class TestCombinationalDesigns:
    """Designs the analyzer proves and the fast path actually runs."""

    @pytest.mark.parametrize("top_cls", [ChainTop, DiamondTop, EdgeTapsTop])
    def test_byte_identical_traces(self, top_cls):
        results = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top_cls("t", sim)
            result = _observe(sim)
            sim.run()
            assert sim._specialized is specialize
            results[specialize] = result()
        _assert_equivalent(results[True], results[False], expect_fast_path=True)


class TestSocArchitectures:
    """The paper's Figure 1 netlists under the real frame workload.

    These designs use threads, buses and blocking transport throughout, so
    the analyzer rejects them and ``specialize=True`` must be a strict
    no-op — same digest, same stats, zero fast commits.
    """

    @pytest.mark.parametrize(
        "make",
        [make_baseline_netlist, lambda a: make_reconfigurable_netlist(a, tech=VIRTEX2PRO)],
        ids=["baseline", "drcf"],
    )
    def test_workload_equivalence(self, make):
        jobs = frame_interleaved_jobs(ACCELS, n_frames=1, seed=7)
        results = {}
        for specialize in (True, False):
            netlist, info = make(ACCELS)
            sim = Simulator(specialize=specialize)
            design = netlist.elaborate(sim)
            runner = JobRunner(info.accel_bases, info.buffer_words)
            design["cpu"].run_task(runner.task(jobs), name="workload")
            result = _observe(sim)
            sim.run()
            assert not sim._specialized  # bus designs run generic either way
            assert len(runner.results) == len(jobs)
            for job in runner.results:
                assert job.outputs == golden_outputs(job.spec)
            results[specialize] = result()
        _assert_equivalent(results[True], results[False], expect_fast_path=False)
        # The generic fallback was a deliberate decision, with a recorded
        # reason — not an accident of the fast path never engaging.
        assert results[True]["stats"] == results[False]["stats"]


class BlockingTransportTop(Module):
    """A two-master blocking-transport netlist built for the compiled-thread
    fast path: producer and consumer threads hand addresses through a FIFO
    and move data over an arbitrated bus into a shared memory, publishing
    their progress on signals the digest hook observes every instant.
    """

    def __init__(self, name, sim, n=12):
        super().__init__(name, sim=sim)
        self.n = n
        self.bus = Bus("bus", parent=self, clock_freq_hz=100e6)
        self.mem = Memory(
            "mem", parent=self, base=0, size_words=128, clock_freq_hz=100e6
        )
        self.bus.register_slave(self.mem)
        self.fifo = Fifo(self.sim, capacity=4, name=f"{name}.fifo")
        self.produced = Signal(self.sim, 0, name=f"{name}.produced")
        self.checksum = Signal(self.sim, 0, name=f"{name}.checksum")
        self.add_thread(self.producer)
        self.add_thread(self.consumer)

    def producer(self):
        for i in range(self.n):
            yield from self.bus.write(i * 4, i * 7 + 1, master="producer")
            yield from self.fifo.put(i * 4)
            self.produced.write(i + 1)

    def consumer(self):
        total = 0
        for _ in range(self.n):
            addr = yield from self.fifo.get()
            data = yield from self.bus.read(addr, 1, master="consumer")
            total += data[0]
            self.checksum.write(total)


class TestBlockingTransportNetlist:
    """Unlike the Figure 1 SoCs above, this design's threads *pass* the
    rendezvous admission proof: ``specialize=True`` runs them as compiled
    state machines while the signal plan stays generic (thread-written
    signals never specialize), and the observable trace must still be
    byte-identical."""

    def test_byte_identical_traces_with_compiled_threads(self):
        results = {}
        tops = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = BlockingTransportTop("t", sim)
            result = _observe(sim)
            sim.run()
            assert sim._specialized is specialize
            if specialize:
                assert len(sim.schedule_plan.compiled_threads) == 2
                assert sim.stats.compiled_thread_waits > 0
            else:
                assert sim.stats.compiled_thread_waits == 0
            results[specialize] = result()
            tops[specialize] = top
        # Compiled threads engage the fast path without any specialized
        # signal commits, so expect_fast_path=False here: the win shows up
        # in compiled_thread_waits (asserted above), not in commit counts.
        _assert_equivalent(results[True], results[False], expect_fast_path=False)
        assert tops[True].mem.peek(0, 16) == tops[False].mem.peek(0, 16)
        expected = sum(i * 7 + 1 for i in range(tops[True].n))
        assert tops[True].checksum.read() == expected
        assert tops[False].checksum.read() == expected


class TestProvedRendezvousDesigns:
    """Threads the audit registry alone cannot admit — a user-defined
    channel class and ``InterruptController`` register access — compile
    through the interprocedural rendezvous proof, and the observable
    trace must stay byte-identical to the generic scheduler's."""

    @pytest.mark.parametrize("top_cls", [UserChannelTop, IrqTop])
    def test_byte_identical_traces(self, top_cls):
        results = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top_cls("t", sim)
            result = _observe(sim)
            sim.run()
            assert sim._specialized is specialize
            if specialize:
                assert len(sim.schedule_plan.compiled_threads) == 2
                assert sim.schedule_plan.thread_exclusions == []
                assert sim.stats.compiled_thread_waits > 0
            results[specialize] = result()
        # Thread-written signals never specialize, so the win is in
        # compiled_thread_waits (asserted above), not commit counts.
        _assert_equivalent(results[True], results[False], expect_fast_path=False)

    def test_clock_anyof_byte_identical_traces(self):
        """A Clock-driven design: the toggle thread's AnyOf(pause, timeout)
        composite is served by the compiled runtime, on a bounded run."""
        results = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            ClockAnyOfTop("t", sim)
            result = _observe(sim)
            sim.run(until=ns(200))
            assert sim._specialized is specialize
            if specialize:
                assert [t.name for t in sim.schedule_plan.compiled_threads] == [
                    "t.clk.toggle"
                ]
                assert sim.stats.compiled_thread_waits > 0
            results[specialize] = result()
        _assert_equivalent(results[True], results[False], expect_fast_path=False)


class TestVcdEquivalence:
    def test_vcd_byte_identical_with_tracer_attached(self):
        """VCD tracing registers signal trace callbacks, which the plan
        treats as observers: the traced design runs generic under both
        settings and the dumps must match byte for byte."""
        dumps = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = ChainTop("chain", sim)
            tracer = VcdTracer("equiv")
            traced = {}  # identity-deduped: stages alias src/out signals
            for module in (top, *top.descendants()):
                for attr, sig in sorted(signals_of(module).items()):
                    traced.setdefault(id(sig), (f"{module.full_name}.{attr}", sig))
            for name, sig in traced.values():
                tracer.trace(sig, name=name, width=8)
            sim.run()
            assert not sim._specialized  # observers force the generic path
            dumps[specialize] = tracer.dumps()
        assert dumps[True] == dumps[False]
        assert dumps[True].count("$var") == 1 + top.depth  # head + stage outs
