"""Multi-DRCF architectures: two fabrics on one bus.

The paper's Section 5 critique of prior partitioning work: "the
partitioning algorithms assume that the application is implemented in
single reconfigurable block ... In real life, there is usually need for
more complex architectures."  These tests exercise exactly that: two
independently transformed fabrics sharing the bus and the configuration
memory.
"""

import pytest

from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    golden_outputs,
    make_multi_fabric_netlist,
    make_reconfigurable_netlist,
)
from repro.kernel import Simulator
from repro.tech import MORPHOSYS, VARICORE

GROUPS = {
    "drcf_bb": (("fir", "fft"), MORPHOSYS),    # baseband fabric
    "drcf_dec": (("viterbi", "xtea"), VARICORE),  # decode/crypto fabric
}
ALL = ("fir", "fft", "viterbi", "xtea")


def run(netlist, info, jobs):
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    return sim, design, runner


class TestConstruction:
    def test_both_fabrics_present_with_disjoint_regions(self):
        netlist, info = make_multi_fabric_netlist(GROUPS)
        assert "drcf_bb" in netlist.component_names
        assert "drcf_dec" in netlist.component_names
        assert all(name not in netlist.component_names for name in ALL)
        design = netlist.elaborate(Simulator())
        cfg = design["cfgmem"]
        regions = [cfg.region_of(name) for name in ALL]
        spans = sorted((base, base + size) for base, size in regions)
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2

    def test_overlapping_groups_rejected(self):
        with pytest.raises(KeyError, match="two fabric groups"):
            make_multi_fabric_netlist(
                {"a": (("fir", "fft"), MORPHOSYS), "b": (("fft",), VARICORE)}
            )

    def test_per_fabric_technologies(self):
        netlist, _ = make_multi_fabric_netlist(GROUPS)
        design = netlist.elaborate(Simulator())
        assert design["drcf_bb"].tech is MORPHOSYS
        assert design["drcf_dec"].tech is VARICORE


class TestBehaviour:
    @pytest.fixture(scope="class")
    def run_result(self):
        netlist, info = make_multi_fabric_netlist(GROUPS)
        jobs = frame_interleaved_jobs(ALL, 2, seed=7)
        return run(netlist, info, jobs), jobs

    def test_outputs_match_spec(self, run_result):
        (sim, design, runner), jobs = run_result
        assert len(runner.results) == len(jobs)
        for result in runner.results:
            assert result.outputs == golden_outputs(result.spec)

    def test_switches_split_between_fabrics(self, run_result):
        (sim, design, runner), jobs = run_result
        bb = design["drcf_bb"].stats
        dec = design["drcf_dec"].stats
        # Each fabric only ever hosts its own contexts.
        assert set(bb.per_context) == {"fir", "fft"}
        assert set(dec.per_context) == {"viterbi", "xtea"}
        assert bb.total_switches > 0 and dec.total_switches > 0

    def test_partitioning_reduces_per_fabric_thrash(self):
        """Two 2-context fabrics see fewer switches than one 4-context
        fabric on the same frame-interleaved workload."""
        jobs = frame_interleaved_jobs(ALL, 2, seed=7)

        single_netlist, single_info = make_reconfigurable_netlist(ALL, tech=VARICORE)
        _, single_design, _ = run(single_netlist, single_info, jobs)
        single_switches = single_design["drcf1"].stats.total_switches

        multi_netlist, multi_info = make_multi_fabric_netlist(
            {"a": (("fir", "fft"), VARICORE), "b": (("viterbi", "xtea"), VARICORE)}
        )
        _, multi_design, _ = run(multi_netlist, multi_info, jobs)
        multi_switches = (
            multi_design["a"].stats.total_switches
            + multi_design["b"].stats.total_switches
        )
        assert multi_switches == single_switches  # same alternation count...
        # ...but each fabric holds half the working set, so on a 2-slot
        # technology the 2-fabric split eliminates fetch misses entirely
        # after cold start, which the single fabric cannot.
        multi2_netlist, multi2_info = make_multi_fabric_netlist(
            {"a": (("fir", "fft"), MORPHOSYS), "b": (("viterbi", "xtea"), MORPHOSYS)}
        )
        _, multi2_design, _ = run(multi2_netlist, multi2_info, jobs)
        single2_netlist, single2_info = make_reconfigurable_netlist(ALL, tech=MORPHOSYS)
        _, single2_design, _ = run(single2_netlist, single2_info, jobs)
        multi2_misses = (
            multi2_design["a"].stats.fetch_misses
            + multi2_design["b"].stats.fetch_misses
        )
        assert multi2_misses == 4  # cold loads only
        assert single2_design["drcf1"].stats.fetch_misses == 8  # thrash
