"""The paper's industrial requirement: existing IP wraps without changes.

"Use of existing code-base and IP must be simple.  Co-simulation with
existing models must be possible without modifications."  The DRCF only
needs ``BusSlaveIf`` (with the two address methods) — so a stock
:class:`~repro.bus.Memory`, written with no knowledge of reconfiguration,
folds into a context unchanged, and behaves identically before and after.
"""

import pytest

from repro.bus import Bus, ConfigMemory, Memory
from repro.core import Context, Drcf, context_parameters_for
from repro.kernel import Simulator
from repro.tech import VARICORE
from tests.conftest import drive


def build(wrapped: bool):
    """Two scratchpad memories, either raw on the bus or folded in a DRCF."""
    sim = Simulator()
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6, protocol="split")
    cfg = ConfigMemory("cfg", sim=sim, base=0x100000, size_words=1 << 18)
    bus.register_slave(cfg)
    mem_a = Memory("pad_a", sim=sim, base=0x1000, size_words=64)
    mem_b = Memory("pad_b", sim=sim, base=0x2000, size_words=64)
    if not wrapped:
        bus.register_slave(mem_a)
        bus.register_slave(mem_b)
        return sim, bus, (mem_a, mem_b), None
    contexts = [
        Context("pad_a", mem_a, context_parameters_for(VARICORE, 2000, 0x100000)),
        Context("pad_b", mem_b, context_parameters_for(VARICORE, 2000, 0x120000)),
    ]
    drcf = Drcf("drcf", sim=sim, contexts=contexts, tech=VARICORE)
    drcf.mst_port.bind(bus)
    bus.register_slave(drcf)
    return sim, bus, (mem_a, mem_b), drcf


def exercise(sim, bus):
    """A little program touching both scratchpads; returns the read log."""
    log = []

    def body():
        yield from bus.write(0x1000, [1, 2, 3], master="cpu")
        yield from bus.write(0x2000, [9, 8], master="cpu")
        a = yield from bus.read(0x1000, 3, master="cpu")
        b = yield from bus.read(0x2000, 2, master="cpu")
        log.append(("a", a))
        log.append(("b", b))

    sim.spawn("p", body)
    sim.run()
    return log


class TestUnmodifiedIpInDrcf:
    def test_stock_memory_wraps_without_changes(self):
        sim, bus, mems, drcf = build(wrapped=True)
        log = exercise(sim, bus)
        assert log == [("a", [1, 2, 3]), ("b", [9, 8])]
        # The wrapped IP's own state and counters behaved normally.
        assert mems[0].peek(0x1000, 3) == [1, 2, 3]
        assert mems[0].write_word_count == 3
        # And the DRCF accounted the switches around it.
        assert drcf.stats.total_switches == 4
        assert drcf.stats.total_config_words > 0

    def test_functionally_identical_to_unwrapped(self):
        _, bus_raw, _, _ = build(wrapped=False)
        sim_raw, bus_raw, _, _ = build(wrapped=False)
        raw_log = exercise(sim_raw, bus_raw)
        sim_wrapped, bus_wrapped, _, _ = build(wrapped=True)
        wrapped_log = exercise(sim_wrapped, bus_wrapped)
        assert raw_log == wrapped_log

    def test_no_busy_protocol_required(self):
        # Memory has no busy/idle handshake; the scheduler treats it as
        # always switchable (the optional-protocol design).
        sim, bus, mems, drcf = build(wrapped=True)
        exercise(sim, bus)
        assert not hasattr(mems[0], "busy")
