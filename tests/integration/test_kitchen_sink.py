"""Kitchen-sink stress test: every feature active in one system.

Two fabrics (one with prefetch + bitstream cache + verification, one
plain), an interrupt controller, a DMA-mediated pipeline step, background
bus traffic, a transient configuration error, and waveform tracing — all
simultaneously, with functional verification and bit-level determinism.
"""

import pytest

from repro.apps import (
    frame_interleaved_jobs,
    golden_outputs,
    make_multi_fabric_netlist,
)
from repro.apps.driver import run_accelerator_job
from repro.bus import DmaController, InterruptController
from repro.core import ContextPrefetcher, SequencePredictor
from repro.cpu import TrafficGenerator
from repro.kernel import Simulator, VcdTracer
from repro.tech import MORPHOSYS, VARICORE

GROUPS = {
    "fab_a": (("fir", "fft"), MORPHOSYS),
    "fab_b": (("viterbi", "xtea"), VARICORE),
}
ALL = ("fir", "fft", "viterbi", "xtea")


def run_system(inject_error: bool):
    netlist, info = make_multi_fabric_netlist(GROUPS)
    netlist.add("irqc", InterruptController, slave_of="system_bus", base=0x3000_0000)
    netlist.add("dma", DmaController, master_of="system_bus")
    # Enable cache + verification on fabric A.
    spec = netlist.component("fab_a")
    spec.kwargs["config_cache_bytes"] = 1 << 16
    spec.kwargs["verify_config"] = True

    sim = Simulator()
    design = netlist.elaborate(sim)
    ContextPrefetcher(
        "pf", parent=design.top, drcf=design["fab_a"],
        predictor=SequencePredictor(["fir", "fft"]),
    )
    generator = TrafficGenerator(
        "bg", parent=design.top, base=0x0000_8000, span_bytes=32 * 1024,
        gap_cycles=60, seed=5, n_transactions=300,
    )
    generator.mst_port.bind(design["system_bus"])
    irqc = design["irqc"]
    accel_of = {}
    for fabric, (accels, _t) in GROUPS.items():
        for name in accels:
            module = design[fabric].child(name)
            module.connect_irq(irqc)
            accel_of[name] = module
    tracer = VcdTracer("kitchen_sink")
    tracer.trace(design["fab_a"].active_context_signal, name="fab_a", width=8)
    tracer.trace(design["fab_b"].active_context_signal, name="fab_b", width=8)

    if inject_error:
        design["cfgmem"].inject_transient_error("fir")

    jobs = frame_interleaved_jobs(ALL, n_frames=2, seed=21)
    results = []

    def workload(cpu):
        for spec in jobs:
            out = yield from run_accelerator_job(
                cpu,
                info.accel_bases[spec.accel],
                spec.inputs,
                param=spec.param,
                coefs=spec.coefs,
                n_outputs=spec.n_outputs,
                buffer_words=info.buffer_words,
                irq=(irqc, accel_of[spec.accel].irq_source),
            )
            results.append((spec, out))

    proc = design["cpu"].run_task(workload, name="wl")

    def stopper():
        yield proc.terminated_event
        sim.stop()

    sim.spawn("stopper", stopper)
    sim.run()
    return sim, design, results, jobs, tracer


class TestKitchenSink:
    @pytest.fixture(scope="class")
    def clean_run(self):
        return run_system(inject_error=False)

    def test_all_outputs_golden(self, clean_run):
        _, _, results, jobs, _ = clean_run
        assert len(results) == len(jobs)
        for spec, out in results:
            assert out == golden_outputs(spec), spec.label

    def test_every_subsystem_was_exercised(self, clean_run):
        sim, design, _, jobs, tracer = clean_run
        bus = design["system_bus"]
        assert bus.monitor.words_by_tag("config") > 0
        assert bus.monitor.words_by_tag("background") > 0
        assert design["irqc"].raised_count == len(jobs)
        assert design["fab_a"].stats.total_switches > 0
        assert design["fab_b"].stats.total_switches > 0
        assert design["fab_a"].config_cache is not None
        assert tracer.change_count > 2

    def test_transient_config_error_recovered(self):
        sim_clean, design_clean, results_clean, _, _ = run_system(False)
        sim_err, design_err, results_err, _, _ = run_system(True)
        # Same functional results despite the corrupted fetch...
        assert [out for _, out in results_clean] == [out for _, out in results_err]
        # ...because the verify-enabled fabric refetched once.
        assert design_err["fab_a"].stats.config_retries == 1
        assert design_clean["fab_a"].stats.config_retries == 0
        assert design_err["cfgmem"].injected_errors == 1

    def test_bit_level_determinism(self):
        runs = []
        for _ in range(2):
            sim, design, results, _, _ = run_system(False)
            runs.append(
                (
                    sim.now,
                    [tuple(out) for _, out in results],
                    design["fab_a"].stats.summary(),
                    design["fab_b"].stats.summary(),
                    design["system_bus"].monitor.total_words,
                )
            )
        assert runs[0] == runs[1]
