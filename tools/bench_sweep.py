#!/usr/bin/env python
"""DSE sweep harness: measure, record and police the sweep engine.

Section 5.5's argument is that system-level DSE is only practical when
re-evaluating the design space is cheap.  This harness times the same
technology/workload grid (the E6-style sweep) through the three execution
modes of :meth:`repro.dse.Explorer.sweep` and records the results in
``BENCH_sweep.json`` at the repository root:

``serial_cold``
    ``workers=1``, no cache — the pre-PR baseline: every point simulates.
``parallel_cold``
    ``workers=4``, no cache — the process-pool fan-out alone.
``parallel_cached``
    ``workers=4`` against a warmed evaluation cache — the steady state of
    iterative DSE, where almost every point is a cache hit.

Every mode must produce byte-identical report JSON (the sweep engine's
core promise); the harness fails otherwise.  The warmed run must also hit
the cache on at least 90% of its points.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py            # run + report
    PYTHONPATH=src python tools/bench_sweep.py --write    # refresh BENCH_sweep.json
    PYTHONPATH=src python tools/bench_sweep.py --check    # CI smoke (quick grid,
                                                          # determinism + cache only)
    PYTHONPATH=src python tools/bench_sweep.py --quick    # small grid sanity run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict, Optional

if __name__ == "__main__" and __package__ is None:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dse import (
    EvalCache,
    Explorer,
    ParameterSpace,
    evaluate_architecture,
    evaluator_fingerprint,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_sweep.json")
SCHEMA = "bench-sweep/v1"
WORKERS = 4

#: The warmed run must serve at least this fraction of points from cache.
MIN_HIT_RATE = 0.90

#: (techs, workloads, n_frames) of the measured grid and the CI quick grid.
FULL_GRID = (("asic", "virtex2pro", "varicore", "morphosys"), ("interleaved", "batched"), 4)
QUICK_GRID = (("asic", "virtex2pro", "morphosys"), ("interleaved",), 1)


def build_space(grid) -> ParameterSpace:
    techs, workloads, n_frames = grid
    return (
        ParameterSpace()
        .add_axis("tech", list(techs))
        .add_axis("workload", list(workloads))
        .add_axis("n_frames", [n_frames])
    )


def measure(grid) -> Dict[str, object]:
    """Time the three execution modes on one grid; verify determinism."""
    explorer = Explorer(evaluate_architecture)
    space = build_space(grid)
    fingerprint = evaluator_fingerprint(evaluate_architecture)
    cache_dir = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        t0 = time.perf_counter()
        serial = explorer.sweep(space, workers=1)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = explorer.sweep(space, workers=WORKERS)
        parallel_s = time.perf_counter() - t0

        # Warm the cache (parallel, timing irrelevant), then measure the
        # steady state every iterative DSE session lives in.
        warm_cache = EvalCache(cache_dir, fingerprint)
        warmed = explorer.sweep(space, workers=WORKERS, cache=warm_cache)
        cached_cache = EvalCache(cache_dir, fingerprint)
        t0 = time.perf_counter()
        cached = explorer.sweep(space, workers=WORKERS, cache=cached_cache)
        cached_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    reports = {
        "serial_cold": serial,
        "parallel_cold": parallel,
        "warm_store": warmed,
        "parallel_cached": cached,
    }
    reference = serial.to_json()
    mismatched = [name for name, rep in reports.items() if rep.to_json() != reference]
    hit_rate = cached.cache["hit_rate"] or 0.0
    return {
        "n_points": len(serial.points),
        "techs": list(grid[0]),
        "workloads": list(grid[1]),
        "n_frames": grid[2],
        "workers": WORKERS,
        # Pool fan-out only pays off with real cores; record how many this
        # machine had so the parallel_cold figure is interpretable.
        "cpus": os.cpu_count(),
        "serial_cold_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "parallel_cached_s": round(cached_s, 3),
        "speedup_parallel_cold": round(serial_s / parallel_s, 2),
        "speedup_parallel_cached": round(serial_s / cached_s, 2),
        "cache_hit_rate": round(hit_rate, 3),
        "byte_identical": not mismatched,
        "mismatched_modes": mismatched,
    }


def report(results: Dict[str, object], baseline: Optional[dict]) -> None:
    print(
        f"grid: {results['n_points']} points "
        f"({','.join(results['techs'])} x {','.join(results['workloads'])} "
        f"x {results['n_frames']} frames), {results['workers']} workers"
    )
    print(f"{'mode':>16} {'seconds':>9} {'vs serial':>10}")
    print("-" * 38)
    for mode in ("serial_cold", "parallel_cold", "parallel_cached"):
        seconds = results[f"{mode}_s"]
        speedup = results["serial_cold_s"] / seconds if seconds else float("inf")
        print(f"{mode:>16} {seconds:>9.3f} {speedup:>9.2f}x")
    print(
        f"cache hit rate (warmed run): {results['cache_hit_rate']:.0%}   "
        f"byte-identical across modes: {'yes' if results['byte_identical'] else 'NO'}"
    )
    committed = (baseline or {}).get("results")
    if committed:
        print(
            "committed: serial={serial_cold_s}s cached={parallel_cached_s}s "
            "(speedup {speedup_parallel_cached}x)".format(**committed)
        )


def check(results: Dict[str, object]) -> int:
    """CI smoke: fail on any determinism or cache-effectiveness breach.

    Deliberately timing-free — shared CI runners make wall-clock
    thresholds flaky; the recorded speedups live in BENCH_sweep.json.
    """
    failures = []
    if not results["byte_identical"]:
        failures.append(
            f"  sweep reports differ across modes: {results['mismatched_modes']}"
        )
    if results["cache_hit_rate"] < MIN_HIT_RATE:
        failures.append(
            f"  warmed-cache hit rate {results['cache_hit_rate']:.0%} < "
            f"{MIN_HIT_RATE:.0%}"
        )
    if failures:
        print("check: SWEEP ENGINE REGRESSION:")
        print("\n".join(failures))
        return 1
    print(
        f"check: ok — {results['n_points']} points byte-identical across "
        f"serial/parallel/cached modes, "
        f"{results['cache_hit_rate']:.0%} cache hits when warmed"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="path of BENCH_sweep.json (default: repo root)")
    parser.add_argument("--write", action="store_true",
                        help="write the measured numbers to the baseline file")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: quick grid, determinism + cache checks only")
    parser.add_argument("--quick", action="store_true",
                        help="use the small quick grid")
    args = parser.parse_args(argv)

    results = measure(QUICK_GRID if (args.check or args.quick) else FULL_GRID)
    if args.check:
        return check(results)
    baseline = None
    if os.path.exists(args.baseline):
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    report(results, baseline)
    if not results["byte_identical"]:
        return 1
    if args.write:
        doc = {
            "schema": SCHEMA,
            "generated_by": "tools/bench_sweep.py --write",
            "python": platform.python_version(),
            "results": results,
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
