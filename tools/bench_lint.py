#!/usr/bin/env python
"""Lint performance smoke: bound the deep analysis layers' wall-clock.

The REP4xx dataflow layer parses every registered process body with the
``ast`` module and assembles a design-level graph, the REP5xx cfg layer
builds a CFG and wait-state machine per body on top of it, and the REP6xx
interproc layer adds wait-for/lock-order traces over the elaborated
design, so their cost grows with the model.  This harness times
``run_lint(dataflow=True)``, ``run_lint(dataflow=True, cfg=True)`` and
``run_lint(dataflow=True, cfg=True, interproc=True)`` on the largest
built-in architecture (the multi-fabric modem, every accelerator split
across two fabrics) and — with ``--check`` — fails when a full analysis
pass of any exceeds a generous wall-clock bound.  The point is not a precise
perf trajectory (``bench_kernel.py`` owns that) but a CI tripwire: an
accidentally quadratic rule or a lost cache shows up as seconds, not
milliseconds.

Usage::

    PYTHONPATH=src python tools/bench_lint.py            # run + report
    PYTHONPATH=src python tools/bench_lint.py --check    # CI smoke: fail over budget
"""

from __future__ import annotations

import argparse
import os
import sys
import time

if __name__ == "__main__" and __package__ is None:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import run_lint
from repro.apps.soc import make_multi_fabric_netlist
from repro.tech import MORPHOSYS, VIRTEX2PRO

#: CI budget for one full dataflow lint pass of the largest example, in
#: seconds.  A warm pass takes well under a second; the slack absorbs
#: slow shared CI machines, not algorithmic regressions.
CHECK_BUDGET_S = 5.0

#: Timed passes (the first pass also pays the AST-cache warm-up; both are
#: reported so a cache regression is visible as pass-1 ~= pass-2).
PASSES = 3


def largest_netlist():
    """The biggest shipped architecture: all four accelerators, two fabrics."""
    netlist, _ = make_multi_fabric_netlist(
        {
            "fabric_a": (("fir", "viterbi"), MORPHOSYS),
            "fabric_b": (("fft", "xtea"), VIRTEX2PRO),
        }
    )
    return netlist


def timed_passes(n_passes: int = PASSES, cfg: bool = False, interproc: bool = False):
    """Wall-clock of ``n_passes`` full lint runs of one layer, in seconds."""
    times = []
    for _ in range(n_passes):
        netlist = largest_netlist()
        start = time.perf_counter()
        report = run_lint(netlist, dataflow=True, cfg=cfg, interproc=interproc)
        times.append(time.perf_counter() - start)
        if report.has_errors:
            raise SystemExit(
                f"bench_lint: the benchmark architecture fails lint:\n"
                f"{report.render()}"
            )
    return times


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when a pass exceeds {CHECK_BUDGET_S:.1f}s",
    )
    args = parser.parse_args(argv)

    layers = (
        ("dataflow", False, False),
        ("dataflow+cfg", True, False),
        ("dataflow+cfg+interproc", True, True),
    )
    for label, cfg, interproc in layers:
        times = timed_passes(cfg=cfg, interproc=interproc)
        for i, t in enumerate(times, 1):
            print(f"{label} pass {i}: {t * 1e3:8.1f} ms")
        worst = max(times)
        print(f"{label} worst:  {worst * 1e3:8.1f} ms  (budget {CHECK_BUDGET_S:.1f}s)")
        if args.check and worst > CHECK_BUDGET_S:
            print(
                f"bench_lint: FAIL — slowest {label} lint pass took "
                f"{worst:.2f}s (> {CHECK_BUDGET_S:.1f}s budget)",
                file=sys.stderr,
            )
            return 1

    if args.check:
        print("bench_lint: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
