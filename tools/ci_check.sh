#!/usr/bin/env bash
# The full CI gate, runnable locally from the repo root:
#
#     bash tools/ci_check.sh
#
# Steps:
#   1. tier-1 test suite
#   2. kernel throughput smoke (>30% regression vs BENCH_kernel.json fails)
#   3. ruff check (skipped with a notice when ruff is not installed)
#   4. static model lint over every example architecture (must be clean)
#   5. fault-campaign smoke: seeded campaign must reproduce byte-for-byte
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/5 tier-1 tests =="
python -m pytest tests -q

echo "== 2/5 kernel throughput check =="
python tools/bench_kernel.py --check

echo "== 3/5 ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests tools examples
else
    echo "ruff not installed; skipping (config lives in pyproject.toml)"
fi

echo "== 4/5 static model lint over examples/ =="
python -m repro lint examples/*.py

echo "== 5/5 fault-campaign reproducibility smoke =="
python -m repro inject --builtin modem --trials 8 --seed 7 --check

echo "ci_check: all gates passed"
