#!/usr/bin/env bash
# The full CI gate, runnable locally from the repo root:
#
#     bash tools/ci_check.sh
#
# Steps:
#   1. tier-1 test suite
#   2. kernel throughput smoke (>30% regression vs BENCH_kernel.json fails;
#      also asserts each specialized static-schedule workload stays above
#      its floor — >=2x on method_chain, >=1.05x on clocked_pipeline) plus
#      the generic-vs-specialized equivalence matrix
#   3. ruff check (skipped with a notice when ruff is not installed)
#   4. static model lint over every example architecture, including the
#      opt-in REP4xx dataflow, REP5xx control-flow and REP6xx interproc
#      layers (must be clean), plus a wall-clock bound on the analyzers
#      (tools/bench_lint.py --check)
#   5. fault-campaign smoke: seeded campaign must reproduce byte-for-byte
#   6. DSE sweep smoke: parallel + cached sweeps must be byte-identical to
#      serial re-runs (workers 1 and 2), and the warmed cache must hit
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/6 tier-1 tests =="
python -m pytest tests -q

echo "== 2/6 kernel throughput + scheduler equivalence check =="
python tools/bench_kernel.py --check
python -m pytest tests/integration/test_scheduler_equivalence.py -q

echo "== 3/6 ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests tools examples
else
    echo "ruff not installed; skipping (config lives in pyproject.toml)"
fi

echo "== 4/6 static model lint over examples/ (dataflow + cfg + interproc layers) =="
python -m repro lint --dataflow --cfg --interproc examples/*.py
python tools/bench_lint.py --check

echo "== 5/6 fault-campaign reproducibility smoke =="
python -m repro inject --builtin modem --trials 8 --seed 7 --check

echo "== 6/6 DSE sweep reproducibility smoke =="
SWEEP_ARGS="--techs asic,morphosys --workloads interleaved --accels fir,xtea --frames 1"
python -m repro sweep $SWEEP_ARGS --workers 1 --check --json > /dev/null
python -m repro sweep $SWEEP_ARGS --workers 2 --check --json > /dev/null
python tools/bench_sweep.py --check

echo "ci_check: all gates passed"
