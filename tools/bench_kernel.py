#!/usr/bin/env python
"""Kernel performance harness: measure, record and police simulator throughput.

The discrete-event kernel is the substrate every experiment in this repo
runs on, so its per-event cost directly bounds how large a model (or DSE
sweep) is practical.  This harness times five workloads that stress the
scheduler's distinct hot paths and records the results in
``BENCH_kernel.json`` at the repository root, giving every future change a
perf trajectory to compare against:

``timed_event``
    One process yielding timed waits — the timed-heap push/pop path.
``ping_pong``
    Two processes trading immediate notifications — the dynamic-waiter
    arm/disarm and runnable-queue path.
``signal_fanout``
    Many signals written every cycle, each with its own watcher — the
    update-queue (request_update) and update-phase path.
``delta_heavy``
    Many processes re-arming on one broadcast event every delta — the
    waiter-list management and delta-queue path.
``bus_transaction``
    Full-stack bus writes through arbiter + memory — a macro workload
    representative of the paper's bus-cycle-accurate models.  The master
    thread runs as a compiled wait-state machine (kernel/specialize.py's
    rendezvous fast path); ``--check`` enforces a specialization floor
    against the generic scheduler.
``method_chain``
    A thread driving a chain of combinational method processes through
    single-writer signals — the interface-method hot path the
    elaboration-time static scheduler (kernel/specialize.py) targets.
    Measured both ways: the committed number runs specialized (the
    default), and ``--check`` additionally verifies the specialized path
    beats ``specialize=False`` by at least 2x with identical results.
``clocked_pipeline``
    A Clock fanned out through ports to registered pipeline stages — the
    clocked port-bound macro workload the PR-7 admission rules (periodic
    single-writer clock proofs, sequential methods, register nets) put on
    the fast path.  ``--check`` enforces its own specialization floor.
``irq_wait``
    An interrupt-driven handshake blocking in ``InterruptController``
    register access — primitives outside the audit registry, admitted by
    the interprocedural rendezvous proof (analysis/interproc.py).
    ``--check`` enforces its own specialization floor.
``drcf_slave``
    The paper's reconfigurable SoC serving frame jobs through the DRCF
    slave — a macro workload over blocking transport, context switches
    and configuration fetches.

Usage::

    PYTHONPATH=src python tools/bench_kernel.py            # run + report
    PYTHONPATH=src python tools/bench_kernel.py --write    # refresh BENCH_kernel.json
    PYTHONPATH=src python tools/bench_kernel.py --check    # CI smoke: fail on >30% regression
    PYTHONPATH=src python tools/bench_kernel.py --quick    # smaller n (fast sanity run)

``--write`` preserves the recorded ``seed_baseline`` section (the numbers
measured on the original seed kernel) so the speedup-vs-seed trajectory is
never lost; pass ``--seed-baseline <file>`` to (re)initialize it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

if __name__ == "__main__" and __package__ is None:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bus import Bus, InterruptController, Memory
from repro.kernel import Clock, Event, Module, Port, Signal, Simulator, ns

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_kernel.json")
SCHEMA = "bench-kernel/v1"

#: CI tolerance: --check fails when a workload drops below this fraction of
#: the committed events/sec.
CHECK_THRESHOLD = 0.70


# ---------------------------------------------------------------------------
# Workloads.  Each returns the number of "events" processed (its own unit:
# timed activations, notification hops, signal updates, wakeups or bus
# transactions); throughput is events / wall-clock second.
# ---------------------------------------------------------------------------

def run_timed_events(n: int) -> int:
    sim = Simulator()
    count = 0

    def body():
        nonlocal count
        for _ in range(n):
            yield ns(1)
            count += 1

    sim.spawn("p", body)
    sim.run()
    return count


def run_event_pingpong(n: int) -> int:
    sim = Simulator()
    ping, pong = Event(sim, "ping"), Event(sim, "pong")
    hops = 0

    def a():
        nonlocal hops
        for _ in range(n):
            ping.notify()
            yield pong
            hops += 1

    def b():
        while True:
            yield ping
            pong.notify()

    sim.spawn("b", b, daemon=True)  # waiter first so ping finds it armed
    sim.spawn("a", a)
    sim.run()
    return hops


def run_signal_fanout(n: int, fanout: int = 100) -> int:
    """One writer updates ``fanout`` signals per cycle, each with a watcher.

    Stresses ``request_update`` dedup (the update queue holds ``fanout``
    channels per delta) and the update phase itself.
    """
    sim = Simulator()
    signals = [Signal(sim, 0, f"s{i}") for i in range(fanout)]
    seen = 0

    def make_watcher(sig):
        def watcher():
            nonlocal seen
            while True:
                yield sig.value_changed
                seen += 1

        return watcher

    for sig in signals:
        sim.spawn(f"w.{sig.name}", make_watcher(sig), daemon=True)

    def writer():
        cycles = max(1, n // fanout)
        for i in range(cycles):
            for sig in signals:
                sig.write(i + 1)
            yield ns(1)

    sim.spawn("writer", writer)
    sim.run()
    return seen


def run_delta_heavy(n: int, waiters: int = 100) -> int:
    """``waiters`` processes re-arm on one broadcast event every delta.

    Stresses dynamic-waiter add/remove on a single fat waiter list and the
    delta notification queue.
    """
    sim = Simulator()
    tick = Event(sim, "tick")
    wakeups = 0

    def waiter():
        nonlocal wakeups
        while True:
            yield tick
            wakeups += 1

    for i in range(waiters):
        sim.spawn(f"w{i}", waiter, daemon=True)

    def driver():
        rounds = max(1, n // waiters)
        for _ in range(rounds):
            tick.notify_delta()
            yield ns(1)

    sim.spawn("driver", driver)
    sim.run()
    return wakeups


CHAIN_DEPTH = 16


class _ChainStage(Module):
    """One combinational stage: out = src + 1, sensitive to src."""

    def __init__(self, name, parent, src):
        super().__init__(name, parent=parent)
        self.src = src
        self.out = Signal(self.sim, 0, f"{self.full_name}.out")
        self.add_method(self.propagate, sensitivity=[src.value_changed], initialize=False)

    def propagate(self):
        self.out.write(self.src.read() + 1)


class _MethodChain(Module):
    """A thread driving ``depth`` chained method stages once per ns."""

    def __init__(self, name, sim, depth, rounds):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.head = Signal(sim, 0, f"{name}.head")
        src = self.head
        for k in range(depth):
            src = _ChainStage(f"s{k}", self, src).out
        self.tail = src
        self.add_thread(self.drive)

    def drive(self):
        for i in range(self.rounds):
            self.head.write(i + 1)
            yield ns(1)


def run_method_chain(n: int, specialize: bool = True) -> int:
    """``n`` signal-propagation hops through the method chain."""
    depth = CHAIN_DEPTH
    rounds = max(1, n // depth)
    sim = Simulator(specialize=specialize)
    top = _MethodChain("chain", sim, depth, rounds)
    sim.run()
    assert top.tail.read() == rounds + depth, "chain produced a wrong value"
    if specialize:
        assert sim._specialized, (
            f"method_chain failed to specialize: {sim.specialize_fallback_reasons}"
        )
    return rounds * depth


def run_method_chain_generic(n: int) -> int:
    return run_method_chain(n, specialize=False)


PIPE_DEPTH = 16
PIPE_PERIOD = ns(10)


class _PipeStage(Module):
    """One registered stage wired entirely through ports."""

    def __init__(self, name, parent, gain):
        super().__init__(name, parent=parent)
        self.gain = gain
        self.clk = Port(self, None, name="clk")
        self.inp = Port(self, None, name="inp")
        self.out = Port(self, None, name="out")

    def connect(self):
        self.add_method(self.tick, sensitivity=[self.clk.posedge], initialize=False)

    def tick(self):
        self.out.write(self.inp.read() + self.gain)


class _ClockedPipeline(Module):
    """A Clock fanned out through ports to ``depth`` registered stages.

    The inter-stage nets are register-style (touched only by posedge
    methods), so this is the clocked port-bound design the PR-7 admission
    rules put on the static fast path: the clock thread is proven a
    periodic single writer, the clock net is chained, and the pipeline
    registers commit without notification scans.
    """

    def __init__(self, name, sim, depth):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", PIPE_PERIOD, parent=self)
        self.d = Signal(sim, 1, f"{name}.d")
        feed = self.d
        for k in range(depth):
            out = Signal(sim, 0, f"{name}.n{k}")
            stage = _PipeStage(f"s{k}", self, gain=1)
            stage.clk.bind(self.clk.signal)
            stage.inp.bind(feed)
            stage.out.bind(out)
            stage.connect()
            feed = out
        self.tail = feed


def run_clocked_pipeline(n: int, specialize: bool = True) -> int:
    """``n`` registered-stage activations of the port-bound pipeline."""
    depth = PIPE_DEPTH
    rounds = max(1, n // depth)
    sim = Simulator(specialize=specialize)
    top = _ClockedPipeline("pipe", sim, depth)
    sim.run(until=ns(10 * rounds))
    # After enough posedges the data has rippled through: tail = d + depth.
    if rounds > depth:
        assert top.tail.read() == 1 + depth, "pipeline produced a wrong value"
    if specialize:
        assert sim._specialized, (
            f"clocked_pipeline failed to specialize: {sim.specialize_fallback_reasons}"
        )
    return rounds * depth


def run_clocked_pipeline_generic(n: int) -> int:
    return run_clocked_pipeline(n, specialize=False)


class _BusMaster(Module):
    """One bus master issuing ``rounds`` blocking single-word writes.

    A bound thread method (rather than a closure) so the rendezvous
    admission pass can resolve ``self.bus`` on the live instance and
    compile the thread's wait states.
    """

    def __init__(self, name, sim, bus, rounds):
        super().__init__(name, sim=sim)
        self.bus = bus
        self.rounds = rounds
        self.add_thread(self.drive)

    def drive(self):
        for i in range(self.rounds):
            yield from self.bus.write((i % 64) * 4, i, master=self.full_name)


def run_bus_transactions(n: int, specialize: bool = True) -> int:
    """``n`` transactions split across two contending masters.

    Two masters so the workload exercises both compiled wait kinds: the
    timed bus/memory cycles and the rendezvous grant waits the arbiter
    resolves under contention (the direct-dispatch path).
    """
    sim = Simulator(specialize=specialize)
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    mem = Memory("mem", sim=sim, base=0, size_words=64)
    bus.register_slave(mem)
    _BusMaster("cpu0", sim, bus, n // 2)
    _BusMaster("cpu1", sim, bus, n - n // 2)
    sim.run()
    if specialize:
        assert sim._specialized, (
            f"bus_transaction failed to specialize: {sim.specialize_fallback_reasons}"
        )
        assert sim.stats.compiled_thread_waits > 0, (
            "bus master threads did not run on the compiled fast path"
        )
    return bus.monitor.transaction_count


def run_bus_transactions_generic(n: int) -> int:
    return run_bus_transactions(n, specialize=False)


class _IrqBench(Module):
    """Interrupt-driven handshake: driver raises, handler services.

    The handler blocks in ``InterruptController.read``/``write`` — user
    primitives outside the audit registry, admitted to the compiled
    runtime by the interprocedural rendezvous proof — plus waits on
    controller-owned events.
    """

    def __init__(self, name, sim, rounds):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.irq = InterruptController("irq", parent=self, base=0x0)
        self.irq.register_source("dev", 0)
        self.ack = Event(sim, f"{name}.ack")
        self.handled = 0
        self.add_thread(self.driver)
        self.add_thread(self.handler)

    def driver(self):
        for _ in range(self.rounds):
            yield ns(10)
            self.irq.raise_irq("dev")
            yield self.ack

    def handler(self):
        for _ in range(self.rounds):
            yield self.irq.any_irq
            pending = yield from self.irq.read(0x0, 1)
            yield from self.irq.write(0x8, pending[0])
            self.handled += 1
            self.ack.notify()


def run_irq_wait(n: int, specialize: bool = True) -> int:
    """``n`` interrupt service round trips (each ~4 compiled waits)."""
    sim = Simulator(specialize=specialize)
    top = _IrqBench("soc", sim, n)
    sim.run()
    assert top.handled == n, "interrupt rounds were dropped"
    if specialize:
        assert sim._specialized, (
            f"irq_wait failed to specialize: {sim.specialize_fallback_reasons}"
        )
        assert sim.stats.compiled_thread_waits > 0, (
            "irq threads did not run on the compiled fast path"
        )
    return n


def run_irq_wait_generic(n: int) -> int:
    return run_irq_wait(n, specialize=False)


def run_drcf_slave(n: int) -> int:
    """The paper's DRCF SoC serving ``n // 2`` frames of accelerator jobs.

    A macro workload over the reconfigurable netlist: the CPU masters
    blocking transport into the DRCF slave, which context-switches and
    fetches bitstreams over the configuration path.  Events are bus
    transactions observed on the system bus.
    """
    from repro.apps import (
        JobRunner,
        frame_interleaved_jobs,
        make_reconfigurable_netlist,
    )

    frames = max(1, n // 2)
    netlist, info = make_reconfigurable_netlist(("fir", "xtea"))
    sim = Simulator()
    design = netlist.elaborate(sim)
    jobs = frame_interleaved_jobs(("fir", "xtea"), n_frames=frames, seed=11)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    assert len(runner.results) == len(jobs), "jobs were dropped"
    return design["system_bus"].monitor.transaction_count


#: name -> (workload fn, default n, quick n)
WORKLOADS: Dict[str, tuple] = {
    "timed_event": (run_timed_events, 30_000, 3_000),
    "ping_pong": (run_event_pingpong, 15_000, 1_500),
    "signal_fanout": (run_signal_fanout, 30_000, 5_000),
    "delta_heavy": (run_delta_heavy, 30_000, 5_000),
    # Same n both modes: large enough to amortize the elaboration-time CFG
    # analysis, small enough that the monitor's growing transaction list
    # doesn't crowd the cache and dilute the specialization ratio.
    "bus_transaction": (run_bus_transactions, 4_000, 4_000),
    "method_chain": (run_method_chain, 48_000, 8_000),
    "clocked_pipeline": (run_clocked_pipeline, 48_000, 8_000),
    # Same n both modes, like bus_transaction: the interrupt workload's
    # cost per round trip is dominated by compiled waits, not setup.
    "irq_wait": (run_irq_wait, 3_000, 3_000),
    "drcf_slave": (run_drcf_slave, 8, 2),
}

#: workload -> (specialized fn, generic fn, min specialized/generic speedup).
#: --check fails when a workload's fast path drops below its floor.  The
#: clocked_pipeline floor is much lower than method_chain's: its generic
#: cost is dominated by the clock thread's timed waits and the register
#: nets have no observers to scan, so specialization only removes the
#: delta-queue dispatch and update round trips (~1.15x measured); the
#: floor mainly guards against the fast path ever being a regression.
SPECIALIZE_FLOORS: Dict[str, tuple] = {
    "method_chain": (run_method_chain, run_method_chain_generic, 2.0),
    "clocked_pipeline": (run_clocked_pipeline, run_clocked_pipeline_generic, 1.05),
    # The compiled-thread rendezvous fast path: the master's timed waits
    # reuse a pooled heap entry and its grant waits resume by direct
    # dispatch, skipping the WaitHandle arm/disarm machinery.
    "bus_transaction": (run_bus_transactions, run_bus_transactions_generic, 1.2),
    # Admission here comes from the interprocedural rendezvous proof (the
    # InterruptController is not in the audit registry); the floor guards
    # both the proof continuing to admit and the fast path never being a
    # regression on event/timed-mixed waits.
    "irq_wait": (run_irq_wait, run_irq_wait_generic, 1.05),
}


def measure_specialization(
    workload: str = "method_chain", quick: bool = False, repeats: int = 3
) -> Dict[str, object]:
    """Generic-vs-specialized comparison on one fast-path workload.

    The two variants are timed *interleaved* (generic, specialized,
    generic, ...) inside one GC-disabled window, so slow drift in machine
    load and collector pauses cancel out of the ratio instead of landing
    on whichever variant ran second.
    """
    if repeats < 1:
        raise ValueError("--repeats must be at least 1")
    fast_fn, generic_fn, _floor = SPECIALIZE_FLOORS[workload]
    _fn, n, quick_n = WORKLOADS[workload]
    size = quick_n if quick else n
    best_g = best_f = None
    events_g = events_f = 0
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            events_g = generic_fn(size)
            eg = time.perf_counter() - t0
            t0 = time.perf_counter()
            events_f = fast_fn(size)
            ef = time.perf_counter() - t0
            if best_g is None or eg < best_g:
                best_g = eg
            if best_f is None or ef < best_f:
                best_f = ef
    finally:
        if gc_was_enabled:
            gc.enable()
    assert events_g > 0 and events_f > 0, "workload processed no events"
    generic = {
        "n": size,
        "events": events_g,
        "seconds": round(best_g, 6),
        "events_per_sec": round(events_g / best_g, 1),
    }
    specialized = {
        "n": size,
        "events": events_f,
        "seconds": round(best_f, 6),
        "events_per_sec": round(events_f / best_f, 1),
    }
    return {
        "workload": workload,
        "generic": generic,
        "specialized": specialized,
        "speedup": round(
            specialized["events_per_sec"] / generic["events_per_sec"], 2
        ),
    }


def measure_all_specializations(
    quick: bool = False, repeats: int = 3
) -> List[Dict[str, object]]:
    return [
        measure_specialization(name, quick=quick, repeats=repeats)
        for name in SPECIALIZE_FLOORS
    ]


def measure(fn: Callable[[int], int], n: int, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock measurement of one workload.

    Runs with the garbage collector off (collected first, restored after)
    so collector pauses don't smear the timings of allocation-heavy
    workloads.
    """
    if repeats < 1:
        raise ValueError("--repeats must be at least 1")
    best = None
    events = 0
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = fn(n)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    assert events > 0, "workload processed no events"
    return {
        "n": n,
        "events": events,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1),
    }


def run_all(quick: bool = False, repeats: int = 3) -> Dict[str, Dict[str, float]]:
    results = {}
    for name, (fn, n, quick_n) in WORKLOADS.items():
        results[name] = measure(fn, quick_n if quick else n, repeats=repeats)
    return results


# ---------------------------------------------------------------------------
# Baseline file handling.
# ---------------------------------------------------------------------------

def load_baseline(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_baseline(
    path: str,
    results: Dict[str, Dict[str, float]],
    seed_baseline: Optional[Dict[str, Dict[str, float]]],
    quick_results: Optional[Dict[str, Dict[str, float]]] = None,
    specialization: Optional[List[Dict[str, object]]] = None,
) -> dict:
    doc = {
        "schema": SCHEMA,
        "generated_by": "tools/bench_kernel.py --write",
        "python": platform.python_version(),
        "workloads": results,
    }
    if quick_results:
        # Reference numbers at the quick-n sizes --check measures with, so
        # the smoke comparison is apples-to-apples (short runs amortize
        # elaboration differently and report lower events/sec).
        doc["quick_workloads"] = quick_results
    if specialization:
        doc["specialization"] = specialization
    if seed_baseline:
        doc["seed_baseline"] = seed_baseline
        doc["speedup_vs_seed"] = {
            name: round(
                results[name]["events_per_sec"] / seed_baseline[name]["events_per_sec"],
                2,
            )
            for name in results
            if name in seed_baseline
        }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def report(
    results: Dict[str, Dict[str, float]],
    baseline: Optional[dict],
    quick: bool = False,
) -> None:
    seed = (baseline or {}).get("seed_baseline", {})
    # Quick runs compare against the quick-n reference (short runs report
    # lower events/sec, so full-n numbers would read as false regressions).
    if quick:
        committed = (baseline or {}).get("quick_workloads") or {}
    else:
        committed = (baseline or {}).get("workloads", {})
    header = f"{'workload':>16} {'n':>8} {'events/s':>12} {'vs committed':>13} {'vs seed':>9}"
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        eps = row["events_per_sec"]
        vs_committed = (
            f"{eps / committed[name]['events_per_sec']:.2f}x" if name in committed else "-"
        )
        vs_seed = f"{eps / seed[name]['events_per_sec']:.2f}x" if name in seed else "-"
        print(f"{name:>16} {row['n']:>8} {eps:>12,.0f} {vs_committed:>13} {vs_seed:>9}")


def report_specialization(specs: List[Dict[str, object]]) -> None:
    for spec in specs:
        name = spec["workload"]
        floor = SPECIALIZE_FLOORS[name][2]
        generic = spec["generic"]["events_per_sec"]
        fast = spec["specialized"]["events_per_sec"]
        print(f"\nstatic-schedule specialization ({name}, n={spec['generic']['n']}):")
        print(f"  generic     {generic:>12,.0f} events/s")
        print(f"  specialized {fast:>12,.0f} events/s")
        print(f"  speedup     {spec['speedup']:>11.2f}x  (floor: {floor}x)")


def check(results: Dict[str, Dict[str, float]], baseline: Optional[dict]) -> int:
    """CI smoke mode: fail (non-zero) on >30% regression vs the baseline."""
    if baseline is None:
        print("check: no BENCH_kernel.json baseline committed; run --write first")
        return 2
    committed = baseline.get("quick_workloads") or baseline.get("workloads", {})
    failures = []
    for name, row in results.items():
        if name not in committed:
            continue
        floor = committed[name]["events_per_sec"] * CHECK_THRESHOLD
        eps = row["events_per_sec"]
        if eps < floor:
            # Machine noise on shared runners can exceed the threshold;
            # re-measure with more repeats before declaring a regression.
            fn, _n, quick_n = WORKLOADS[name]
            retry = measure(fn, quick_n, repeats=6)
            eps = max(eps, retry["events_per_sec"])
        if eps < floor:
            failures.append(
                f"  {name}: {eps:,.0f} ev/s < "
                f"{floor:,.0f} ev/s ({CHECK_THRESHOLD:.0%} of committed "
                f"{committed[name]['events_per_sec']:,.0f})"
            )
    rc = 0
    if failures:
        print("check: THROUGHPUT REGRESSION (>30% below committed baseline):")
        print("\n".join(failures))
        rc = 1
    else:
        print(f"check: ok — all {len(results)} workloads within "
              f"{1 - CHECK_THRESHOLD:.0%} of the committed baseline")
    for name, (_fast, _generic, floor) in SPECIALIZE_FLOORS.items():
        spec = measure_specialization(name, quick=True, repeats=3)
        if spec["speedup"] < floor:
            # Same noise allowance as above: re-measure before failing.
            # Best-of-8 converges the ratio estimate on a noisy runner.
            spec = measure_specialization(name, quick=True, repeats=8)
        if spec["speedup"] < floor:
            print(f"check: SPECIALIZATION REGRESSION: {name} specialized path "
                  f"is only {spec['speedup']:.2f}x the generic path "
                  f"(floor {floor}x)")
            rc = 1
        else:
            print(f"check: specialization ok — {name} specialized path is "
                  f"{spec['speedup']:.2f}x the generic path "
                  f"(floor {floor}x)")
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="path of BENCH_kernel.json (default: repo root)")
    parser.add_argument("--write", action="store_true",
                        help="write the measured numbers to the baseline file")
    parser.add_argument("--check", action="store_true",
                        help="smoke mode: rerun (quick n) and fail on >30%% regression")
    parser.add_argument("--quick", action="store_true",
                        help="use the smaller quick-n per workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per workload (default 3)")
    parser.add_argument("--seed-baseline", default=None,
                        help="JSON file of seed-kernel measurements to embed "
                             "as the seed_baseline section on --write")
    parser.add_argument("--emit-raw", action="store_true",
                        help="print the raw measurement dict as JSON to stdout")
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    results = run_all(quick=args.quick or args.check, repeats=args.repeats)

    if args.emit_raw:
        print(json.dumps(results, indent=2))
        return 0
    if args.check:
        return check(results, baseline)
    report(results, baseline, quick=args.quick)
    specs = measure_all_specializations(quick=args.quick, repeats=args.repeats)
    report_specialization(specs)
    if args.write:
        if args.seed_baseline:
            with open(args.seed_baseline, "r", encoding="utf-8") as fh:
                seed = json.load(fh)
        else:
            seed = (baseline or {}).get("seed_baseline")
        quick_results = (
            results if args.quick else run_all(quick=True, repeats=args.repeats)
        )
        write_baseline(args.baseline, results, seed,
                       quick_results=quick_results, specialization=specs)
        print(f"\nwrote {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
