#!/usr/bin/env python3
"""Generate docs/API.md from the public API's docstrings.

Walks every ``repro`` subpackage's ``__all__``, collecting each public
name's kind and first docstring line into a markdown reference.  The test
``tests/docs/test_api_reference.py`` regenerates the document and compares
it with the checked-in copy, so the reference cannot go stale.

Run:  python tools/gen_api_docs.py [output_path]
"""

from __future__ import annotations

import importlib
import inspect
import sys

PACKAGES = [
    "repro.kernel",
    "repro.parallel",
    "repro.bus",
    "repro.cpu",
    "repro.core",
    "repro.tech",
    "repro.apps",
    "repro.apps.accelerators",
    "repro.dse",
    "repro.analysis",
    "repro.faults",
]


def _kind(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    if isinstance(obj, type(lambda: None)):
        return "function"
    return "constant"


def _first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return "(undocumented)"
    line = doc.strip().splitlines()[0].strip()
    return line.rstrip(".") + "." if line else "(undocumented)"


def generate() -> str:
    """Build the full API.md text."""
    lines = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_docs.py`; checked",
        "for freshness by `tests/docs/test_api_reference.py`.  One row per",
        "public name (each package's `__all__`).",
        "",
    ]
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        doc = inspect.getdoc(module) or ""
        summary = doc.strip().splitlines()[0] if doc else ""
        lines.append(f"## `{package_name}`")
        if summary:
            lines.append("")
            lines.append(summary)
        lines.append("")
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            kind = _kind(obj)
            summary = _first_line(obj) if kind != "constant" else "constant value."
            summary = summary.replace("|", "\\|")
            lines.append(f"| `{name}` | {kind} | {summary} |")
        lines.append("")
    return "\n".join(lines) + ""


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else "docs/API.md"
    text = generate()
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {output} ({text.count(chr(10)) + 1} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
