"""E5 — Section 5.3: the context-scheduler protocol, step by step.

Micro-benchmarks the scheduler on a controlled rig and regenerates the
per-context instrumentation table (step 5 of the protocol).

Expected shape: calls to the active context forward with zero switch cost
(step 2); calls to an inactive context suspend for exactly one bitstream
fetch plus the parameterized delays (steps 3–4); the instrumentation
accounts every switch, every configuration word and per-context active
time (step 5).
"""

import pytest

from repro.analysis import per_context_rows
from repro.dse import format_table
from repro.kernel import us
from tests.core.helpers import DrcfRig, small_tech

GATES = 2000  # -> 2000-byte contexts on the unit-test technology


def run_protocol():
    rig = DrcfRig(n_contexts=3, tech=small_tech(context_slots=1), context_gates=GATES)
    marks = {}

    def body():
        # step 3/4: first call switches (cold miss)
        t0 = rig.sim.now
        yield from rig.master_read(rig.addr(0))
        marks["cold_call_ns"] = (rig.sim.now - t0).to_ns()
        # step 2: repeat call forwards directly
        t0 = rig.sim.now
        yield from rig.master_read(rig.addr(0))
        marks["hot_call_ns"] = (rig.sim.now - t0).to_ns()
        # steps 3/4 again: cross-context call
        t0 = rig.sim.now
        yield from rig.master_read(rig.addr(1))
        marks["switch_call_ns"] = (rig.sim.now - t0).to_ns()
        yield from rig.master_read(rig.addr(2))
        yield from rig.master_read(rig.addr(0))

    rig.sim.spawn("p", body)
    rig.sim.run()
    return rig, marks


@pytest.fixture(scope="module")
def protocol_run():
    return run_protocol()


def test_e5_protocol_steps(benchmark, protocol_run, save_table):
    benchmark.pedantic(run_protocol, rounds=3, iterations=1)
    rig, marks = protocol_run
    stats = rig.drcf.stats

    # Step 2: the hot call is at least an order of magnitude cheaper than
    # any call that switched.
    assert marks["hot_call_ns"] * 10 < marks["switch_call_ns"]
    assert marks["hot_call_ns"] * 10 < marks["cold_call_ns"]

    # Steps 3-4: the switching call's latency is dominated by the fetch of
    # ceil(size/word) configuration words over the bus.
    words = rig.drcf.contexts[0].params.config_words(4)
    fetch_floor_ns = words * 10  # one 100 MHz bus data beat per word
    assert marks["switch_call_ns"] > fetch_floor_ns

    # Step 5: full accounting. 4 switches (0,1,2,0 cold/cross), all misses
    # on a single-slot fabric, each fetching exactly `words` words.
    assert stats.total_switches == 4
    assert stats.fetch_misses == 4
    assert stats.total_config_words == 4 * words
    assert rig.bus.monitor.words_by_tag("config") == 4 * words
    per_ctx = stats.summary()["per_context"]
    assert per_ctx["s0"]["calls"] == 3
    assert per_ctx["s1"]["calls"] == 1
    assert all(row["active_time_ns"] > 0 for row in per_ctx.values())

    save_table(
        "e5_context_scheduler",
        format_table(
            per_context_rows(rig.drcf),
            title="E5: per-context instrumentation (protocol step 5)",
        )
        + "\n\n"
        + format_table(
            [marks],
            title="E5: call latencies (hot = step 2 forward; others switch)",
        )
        + "\n\nDRCF activity timeline:\n"
        + rig.drcf.stats.timeline.render_ascii(),
    )


def test_e5_switch_cost_scales_with_context_size(benchmark):
    def measure(gates):
        rig = DrcfRig(n_contexts=2, tech=small_tech(), context_gates=gates)

        def body():
            yield from rig.master_read(rig.addr(0))
            yield from rig.master_read(rig.addr(1))

        rig.sim.spawn("p", body)
        rig.sim.run()
        return rig.drcf.stats.total_reconfig_time.to_ns()

    times = benchmark.pedantic(
        lambda: [measure(g) for g in (500, 2000, 8000)], rounds=1, iterations=1
    )
    # Reconfiguration time grows monotonically (roughly linearly) with the
    # context size parameter — Section 5.3 parameter 2 in action.
    assert times[0] < times[1] < times[2]
    assert times[2] > times[0] * 4
