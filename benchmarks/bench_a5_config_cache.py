"""A5 — ablation: on-chip configuration cache.

Chapter 2 counts "memories storing configurations" among the costs of
reconfigurable systems; this ablation quantifies the other side of that
trade: an on-chip bitstream cache in front of the configuration-memory
path removes repeat fetches from the system bus.

Expected shape: with capacity for the working set, only cold loads touch
the bus (traffic drops to #contexts × context-words) and makespan falls;
with capacity for a single bitstream, an alternating workload thrashes and
the cache buys nothing.
"""

import pytest

from repro.dse import format_table
from tests.core.helpers import DrcfRig, small_tech

ACCESSES = [0, 1, 0, 1, 0, 1, 0, 1]
GATES = 2000  # 2000-byte bitstreams on the unit technology


def run_with_cache(cache_bytes):
    # Fast config port: loads are bus-bound, so cache hits save real time.
    tech = small_tech(
        context_slots=1, config_port_width_bits=256, config_port_freq_hz=400e6
    )
    rig = DrcfRig(
        n_contexts=2, tech=tech, context_gates=GATES, config_cache_bytes=cache_bytes
    )

    def body():
        for index in ACCESSES:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run()
    cache = rig.drcf.config_cache
    return {
        "cache_bytes": cache_bytes or 0,
        "makespan_us": rig.sim.now.to_us(),
        "bus_config_words": rig.bus.monitor.words_by_tag("config"),
        "cache_hits": cache.hits if cache else 0,
        "cache_evictions": cache.evictions if cache else 0,
    }


@pytest.fixture(scope="module")
def rows():
    return [run_with_cache(c) for c in (None, 2048, 8192)]


def test_a5_config_cache(benchmark, rows, save_table):
    benchmark.pedantic(run_with_cache, args=(8192,), rounds=2, iterations=1)

    none, small, big = rows
    words = 500  # 2000 bytes / 4

    # No cache: every one of the 8 switches fetches over the bus.
    assert none["bus_config_words"] == len(ACCESSES) * words

    # One-bitstream cache thrashes on the alternating pattern: zero hits,
    # same traffic, continuous evictions.
    assert small["cache_hits"] == 0
    assert small["bus_config_words"] == none["bus_config_words"]
    assert small["cache_evictions"] > 0

    # Working-set-sized cache: only the 2 cold loads reach the bus, the
    # other 6 switches hit on chip, and the run gets faster.
    assert big["bus_config_words"] == 2 * words
    assert big["cache_hits"] == len(ACCESSES) - 2
    assert big["makespan_us"] < none["makespan_us"]

    save_table(
        "a5_config_cache",
        format_table(rows, title="A5: on-chip bitstream cache vs capacity"),
    )
