"""E6 — Section 5.5 / Chapter 3: the technology parameter sweep.

The paper's thesis: technology effects cannot be generalized, only
parameterized — so the same application is swept over the Chapter 3
presets and two workload localities, regenerating the comparison table
and locating the crossovers.

Expected shape (DESIGN.md): MorphoSys-style multi-context fabrics come
within a small factor of dedicated hardware; fine-grain single-context
FPGAs are reconfiguration-dominated when contexts alternate per
invocation and recover most of it when invocations batch; the crossover
between the ref-technologies falls where switch rate, not compute,
dominates.
"""

import pytest

from repro.dse import (
    Explorer,
    ParameterSpace,
    crossover_point,
    evaluate_architecture,
    format_points,
    pareto_front,
)

TECHS = ["asic", "virtex2pro", "varicore", "morphosys"]
PARAMS = ("tech", "workload")
METRICS = (
    "makespan_us",
    "switches",
    "reconfig_time_us",
    "reconfig_overhead_fraction",
    "bus_config_words",
    "area_um2",
)


def run_sweep():
    space = (
        ParameterSpace()
        .add_axis("tech", TECHS)
        .add_axis("workload", ["interleaved", "batched"])
        .add_axis("n_frames", [2])
    )
    return Explorer(evaluate_architecture).run(space)


@pytest.fixture(scope="module")
def points():
    return run_sweep()


def metric(points, tech, workload, key):
    for p in points:
        if p.params["tech"] == tech and p.params["workload"] == workload:
            return p.metrics[key]
    raise KeyError((tech, workload))


def test_e6_technology_sweep(benchmark, points, save_table):
    benchmark.pedantic(
        lambda: evaluate_architecture({"tech": "morphosys", "n_frames": 2}),
        rounds=2,
        iterations=1,
    )

    # Who wins on the switch-heavy workload: dedicated < coarse
    # multi-context < medium < fine-grain single-context.
    expected_order = ["asic", "morphosys", "varicore", "virtex2pro"]
    order = [metric(points, t, "interleaved", "makespan_us") for t in expected_order]
    assert order == sorted(order)

    # By roughly what factor: fine-grain pays orders of magnitude, coarse
    # stays within ~2 decades of ASIC on this switch-per-call workload.
    asic = metric(points, "asic", "interleaved", "makespan_us")
    assert metric(points, "virtex2pro", "interleaved", "makespan_us") > 100 * asic
    assert metric(points, "morphosys", "interleaved", "makespan_us") < 100 * asic

    # Batching halves the switches and cuts reconfiguration time ~2x for
    # every reconfigurable preset.
    for tech in TECHS[1:]:
        inter = metric(points, tech, "interleaved", "reconfig_time_us")
        batch = metric(points, tech, "batched", "reconfig_time_us")
        assert batch == pytest.approx(inter / 2, rel=0.05)
        assert metric(points, tech, "batched", "switches") == 4
        assert metric(points, tech, "interleaved", "switches") == 8

    # Overhead fraction ordering mirrors configuration bandwidth.
    fractions = [
        metric(points, t, "interleaved", "reconfig_overhead_fraction")
        for t in ("morphosys", "varicore", "virtex2pro")
    ]
    assert fractions == sorted(fractions)

    # Crossover bookkeeping: moving from interleaved to batched, varicore's
    # makespan falls below morphosys-interleaved? Record both curves.
    analysis = crossover_point(
        points, axis="workload", metric="makespan_us",
        series_key="tech", series_a="morphosys", series_b="asic",
    )
    assert analysis["crossover"] is not None  # morphosys never beats ASIC

    front = pareto_front(
        points,
        [("makespan_us", "min"), ("area_um2", "min"), ("flexible", "max")],
    )
    front_names = {(p.params["tech"], p.params["workload"]) for p in front}
    assert ("morphosys", "batched") in front_names  # flexible winner

    save_table(
        "e6_technology_sweep",
        format_points(points, PARAMS, METRICS, title="E6: technology sweep")
        + "\n\nPareto front (latency/area/flexibility): "
        + ", ".join(f"{t}/{w}" for t, w in sorted(front_names)),
    )
