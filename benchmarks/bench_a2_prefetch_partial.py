"""A2 — ablation / future work: background prefetch and partial reconfiguration.

Both features are named by the paper (MorphoSys background loading in
Chapter 3; partial reconfiguration as future work in Section 5.3).

Expected shape: with think time between invocations, a sequence-aware
prefetcher converts foreground fetch misses into resident hits and cuts
makespan; area-slot (partial-reconfiguration) fabrics trade fabric gate
budget against misses — enough budget makes every context resident after
its first load.
"""

import pytest

from repro.core import ContextPrefetcher, SequencePredictor
from repro.dse import format_table
from repro.kernel import us
from tests.core.helpers import DrcfRig, small_tech

ACCESSES = [0, 1, 2] * 4
THINK = us(40)


def run_prefetch(enabled):
    tech = small_tech(context_slots=2, background_load=True)
    rig = DrcfRig(n_contexts=3, tech=tech, context_gates=2000)
    if enabled:
        ContextPrefetcher(
            "pf", sim=rig.sim, drcf=rig.drcf,
            predictor=SequencePredictor(["s0", "s1", "s2"]),
        )

    def body():
        for index in ACCESSES:
            yield from rig.master_read(rig.addr(index))
            yield THINK

    rig.sim.spawn("p", body)
    rig.sim.run()
    stats = rig.drcf.stats
    return {
        "prefetch": enabled,
        "makespan_us": rig.sim.now.to_us(),
        "fetch_misses": stats.fetch_misses,
        "prefetch_hits": stats.prefetch_hits,
        "background_loads": stats.background_loads,
    }


def run_partial(capacity_gates):
    tech = small_tech(context_slots=1, partial_reconfig=True)
    rig = DrcfRig(
        n_contexts=3,
        tech=tech,
        context_gates=2000,
        use_area_slots=True,
        fabric_capacity_gates=capacity_gates,
    )

    def body():
        for index in ACCESSES:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run()
    return {
        "capacity_gates": capacity_gates,
        "fetch_misses": rig.drcf.stats.fetch_misses,
        "makespan_us": rig.sim.now.to_us(),
        "resident": len(rig.drcf.resident_context_names()),
    }


def test_a2_prefetch(benchmark, save_table):
    rows = benchmark.pedantic(
        lambda: [run_prefetch(False), run_prefetch(True)], rounds=1, iterations=1
    )
    off, on = rows
    # Prefetch converted foreground misses into hits and cut the makespan.
    assert on["fetch_misses"] < off["fetch_misses"]
    assert on["prefetch_hits"] > 0
    assert on["makespan_us"] < off["makespan_us"]
    save_table(
        "a2_prefetch",
        format_table(rows, title="A2a: MorphoSys-style background loading"),
    )


def test_a2_partial_reconfiguration(benchmark, save_table):
    capacities = [2000, 4000, 6000]
    rows = benchmark.pedantic(
        lambda: [run_partial(c) for c in capacities], rounds=1, iterations=1
    )
    # More fabric budget -> more simultaneously resident contexts -> fewer
    # misses, monotonically; at 3x context size the 3-context working set
    # fits and only the 3 cold loads remain.
    misses = [row["fetch_misses"] for row in rows]
    assert misses == sorted(misses, reverse=True)
    assert misses[0] == len(ACCESSES)  # single-context equivalent: all miss
    assert misses[-1] == 3
    assert rows[-1]["resident"] == 3
    makespans = [row["makespan_us"] for row in rows]
    assert makespans == sorted(makespans, reverse=True)
    save_table(
        "a2_partial",
        format_table(
            rows,
            title="A2b: partial reconfiguration (area slots) vs fabric budget",
        ),
    )
