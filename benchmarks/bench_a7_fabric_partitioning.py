"""A7 — ablation: one big fabric vs several smaller fabrics.

The paper criticizes partitioning approaches that "assume that the
application is implemented in single reconfigurable block" — real designs
need more complex architectures.  This bench quantifies the fabric-count
choice: the same four blocks as one 4-context DRCF, two 2-context DRCFs,
or four dedicated blocks.

Expected shape: splitting the working set across fabrics removes context
thrash on multi-context technology (cold loads only) at the price of more
total fabric area (each fabric sized for its own largest context); the
single fabric has the smallest area and the most reconfiguration.
"""

import pytest

from repro.apps import (
    JobRunner,
    accelerator_gate_counts,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
    make_multi_fabric_netlist,
    make_reconfigurable_netlist,
)
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import ASIC, MORPHOSYS

ALL = ("fir", "fft", "viterbi", "xtea")


def run_architecture(kind, n_frames=2):
    jobs = frame_interleaved_jobs(ALL, n_frames, seed=7)
    gates = accelerator_gate_counts(ALL)
    if kind == "dedicated":
        netlist, info = make_baseline_netlist(ALL)
        drcf_names = []
        area = sum(gates.values()) * ASIC.area_per_gate_um2
    elif kind == "one fabric":
        netlist, info = make_reconfigurable_netlist(ALL, tech=MORPHOSYS)
        drcf_names = ["drcf1"]
        area = max(gates.values()) * MORPHOSYS.area_per_gate_um2
    else:  # two fabrics
        netlist, info = make_multi_fabric_netlist(
            {"fab_a": (("fir", "fft"), MORPHOSYS), "fab_b": (("viterbi", "xtea"), MORPHOSYS)}
        )
        drcf_names = ["fab_a", "fab_b"]
        area = (
            max(gates["fir"], gates["fft"]) + max(gates["viterbi"], gates["xtea"])
        ) * MORPHOSYS.area_per_gate_um2
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    assert all(r.outputs == golden_outputs(r.spec) for r in runner.results)
    misses = sum(design[d].stats.fetch_misses for d in drcf_names)
    reconfig_us = sum(
        design[d].stats.total_reconfig_time.to_us() for d in drcf_names
    )
    return {
        "architecture": kind,
        "fabrics": len(drcf_names),
        "makespan_us": sim.now.to_us(),
        "fetch_misses": misses,
        "reconfig_us": reconfig_us,
        "fabric_area_um2": area,
    }


@pytest.fixture(scope="module")
def rows():
    return [run_architecture(k) for k in ("dedicated", "one fabric", "two fabrics")]


def test_a7_fabric_partitioning(benchmark, rows, save_table):
    benchmark.pedantic(run_architecture, args=("two fabrics",), rounds=1, iterations=1)

    dedicated, one, two = rows
    # Two 2-context fabrics hold the whole working set: cold loads only.
    assert two["fetch_misses"] == 4
    # One 2-slot fabric hosting 4 alternating contexts thrashes: all miss.
    assert one["fetch_misses"] == 8
    assert two["reconfig_us"] < one["reconfig_us"]
    assert two["makespan_us"] < one["makespan_us"]
    # Area ordering: one shared fabric < two fabrics < (here) the two-fabric
    # figure still under the dedicated total scaled by fabric density.
    assert one["fabric_area_um2"] < two["fabric_area_um2"]
    # And the latency ordering brackets the design space.
    assert dedicated["makespan_us"] < two["makespan_us"] < one["makespan_us"]

    save_table(
        "a7_fabric_partitioning",
        format_table(rows, title="A7: fabric-count trade-off (MorphoSys preset)"),
    )
