"""A8 — ablation: inter-stage data transport through a shared fabric.

Pipelined applications move data between blocks.  When both blocks are
contexts of one single-context DRCF, a DMA engine copying output buffer →
input buffer alternates between the two address ranges, forcing a context
switch *per burst chunk* — a system-level pathology that only shows up
because this methodology models the switching and its memory traffic.

Expected shape: on dedicated hardware the DMA burst length barely matters;
on a single-context DRCF, halving the burst length multiplies context
switches and reconfiguration time, and whole-buffer bursts (or a CPU copy
staged entirely per context) are the remedy.
"""

import pytest

from repro.apps import (
    PipelineStage,
    golden_pipeline,
    make_baseline_netlist,
    make_reconfigurable_netlist,
    run_dma_mediated_pipeline,
)
from repro.bus import DmaController
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import VARICORE

STAGES = [
    PipelineStage("fir", param=2, coefs=[1 << 14, 1 << 13]),
    PipelineStage("xtea", param=0, coefs=[1, 2, 3, 4]),
]
INPUTS = [37 * i - 500 for i in range(64)]


def run_point(architecture, burst):
    if architecture == "dedicated":
        netlist, info = make_baseline_netlist(("fir", "xtea"))
    else:
        netlist, info = make_reconfigurable_netlist(("fir", "xtea"), tech=VARICORE)
    netlist.add("dma", DmaController, master_of="system_bus")
    sim = Simulator()
    design = netlist.elaborate(sim)
    result = {}

    def task(cpu):
        result["out"] = yield from run_dma_mediated_pipeline(
            cpu, design["dma"], info.accel_bases, STAGES, INPUTS,
            buffer_words=info.buffer_words, dma_burst_words=burst,
        )

    design["cpu"].run_task(task)
    sim.run()
    assert result["out"] == golden_pipeline(STAGES, INPUTS)
    switches = (
        design["drcf1"].stats.total_switches if architecture == "drcf" else 0
    )
    reconfig_us = (
        design["drcf1"].stats.total_reconfig_time.to_us()
        if architecture == "drcf"
        else 0.0
    )
    return {
        "architecture": architecture,
        "dma_burst_words": burst,
        "makespan_us": sim.now.to_us(),
        "context_switches": switches,
        "reconfig_us": reconfig_us,
    }


@pytest.fixture(scope="module")
def rows():
    return [
        run_point(arch, burst)
        for arch in ("dedicated", "drcf")
        for burst in (8, 16, 64)
    ]


def test_a8_pipeline_transport(benchmark, rows, save_table):
    benchmark.pedantic(run_point, args=("drcf", 64), rounds=1, iterations=1)

    def pick(arch, burst):
        for row in rows:
            if row["architecture"] == arch and row["dma_burst_words"] == burst:
                return row
        raise KeyError((arch, burst))

    # Dedicated hardware: burst length is a second-order effect.
    d8, d64 = pick("dedicated", 8), pick("dedicated", 64)
    assert d8["makespan_us"] < d64["makespan_us"] * 1.5

    # DRCF: each halving of the burst multiplies the inter-context
    # switches, and reconfiguration time follows.
    r8, r16, r64 = (pick("drcf", b) for b in (8, 16, 64))
    assert r8["context_switches"] > r16["context_switches"] > r64["context_switches"]
    assert r8["reconfig_us"] > r16["reconfig_us"] > r64["reconfig_us"]
    assert r8["makespan_us"] > r64["makespan_us"] * 2

    # Whole-buffer bursts reduce the copy to the minimum 2 switches plus
    # the pipeline's own stage switches.
    assert r64["context_switches"] <= 4

    save_table(
        "a8_pipeline_transport",
        format_table(
            rows,
            title="A8: DMA burst length vs context thrash (2-stage pipeline)",
        ),
    )
