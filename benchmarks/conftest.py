"""Shared helpers for the experiment benchmarks.

Every bench regenerates the table/series for one paper artifact (see
DESIGN.md's experiment index), asserts the expected *shape* (orderings,
crossovers, conditions), prints the table, and archives it under
``benchmarks/results/`` so the regenerated artifacts survive the run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture
def save_table():
    """Fixture: ``save_table(name, text)`` prints and archives a table."""
    return _save_table
