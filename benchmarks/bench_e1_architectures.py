"""E1 — Figure 1: baseline SoC vs the reconfigurable-fabric SoC.

Regenerates the architectural comparison the figure implies: the same
application and workload on (a) dedicated accelerators and (b) the DRCF
architecture, reporting latency, context switches, configuration traffic
and the accelerator-subsystem area (including the statically-configured-
fabric alternative, whose area the DRCF's max-vs-sum sharing beats).

Expected shape (DESIGN.md): the reconfigurable SoC trades latency
(exactly the modeled reconfiguration overhead) for fabric-area sharing
and post-fabrication flexibility; outputs are bit-identical to the
executable specification in every architecture.
"""

import pytest

from repro.dse import evaluate_architecture, format_table

ACCELS = ("fir", "fft", "viterbi", "xtea")
POINTS = [
    {"label": "fig-1a dedicated ASIC", "tech": "asic"},
    {"label": "fig-1b DRCF virtex2pro", "tech": "virtex2pro"},
    {"label": "fig-1b DRCF morphosys", "tech": "morphosys"},
]


def run_point(point):
    params = {"tech": point["tech"], "accels": ACCELS, "n_frames": 2, "workload": "interleaved"}
    metrics = evaluate_architecture(params)
    return {
        "architecture": point["label"],
        "makespan_us": metrics["makespan_us"],
        "switches": metrics["switches"],
        "reconfig_us": metrics["reconfig_time_us"],
        "config_words": metrics["bus_config_words"],
        "area_um2": metrics["area_um2"],
        "static_fabric_area_um2": metrics.get("area_static_fabric_um2", ""),
        "flexible": metrics["flexible"],
    }


@pytest.fixture(scope="module")
def rows():
    return [run_point(p) for p in POINTS]


def test_e1_architecture_comparison(benchmark, rows, save_table):
    benchmark.pedantic(run_point, args=(POINTS[2],), rounds=2, iterations=1)

    asic, virtex, morpho = rows
    # Dedicated hardware is fastest and needs no configuration traffic.
    assert asic["makespan_us"] < morpho["makespan_us"] < virtex["makespan_us"]
    assert asic["config_words"] == 0 and asic["switches"] == 0
    # The DRCF architectures paid exactly for reconfiguration: switches
    # happened and configuration words crossed the memory bus.
    for row in (virtex, morpho):
        assert row["switches"] == 8  # 4 blocks x 2 frames, interleaved
        assert row["config_words"] > 0
        assert row["flexible"]
        # Dynamic sharing: fabric sized for max context beats keeping all
        # blocks statically configured.
        assert row["area_um2"] < row["static_fabric_area_um2"]

    save_table(
        "e1_architectures",
        format_table(rows, title="E1: Figure 1(a) vs Figure 1(b) on the same workload"),
    )
