"""Kernel performance micro-benchmarks.

Not a paper artifact — these measure the simulation engine itself (events,
context switches of the coroutine scheduler, signal updates, bus
transactions) so regressions in the substrate's throughput are visible.
The assertions are generous sanity floors, not performance contracts.
"""

import pytest

from repro.bus import Bus, Memory
from repro.kernel import Event, Signal, Simulator, ns


def run_timed_events(n):
    sim = Simulator()
    count = 0

    def body():
        nonlocal count
        for _ in range(n):
            yield ns(1)
            count += 1

    sim.spawn("p", body)
    sim.run()
    return count


def run_event_pingpong(n):
    sim = Simulator()
    ping, pong = Event(sim, "ping"), Event(sim, "pong")
    hops = 0

    def a():
        nonlocal hops
        for _ in range(n):
            ping.notify()
            yield pong
            hops += 1

    def b():
        while True:
            yield ping
            pong.notify()

    sim.spawn("b", b, daemon=True)  # waiter first so ping finds it armed
    sim.spawn("a", a)
    sim.run()
    return hops


def run_signal_updates(n):
    sim = Simulator()
    signal = Signal(sim, 0, "s")
    seen = 0

    def watcher():
        nonlocal seen
        while True:
            yield signal.value_changed
            seen += 1

    def writer():
        for i in range(n):
            signal.write(i + 1)
            yield ns(1)

    sim.spawn("w", watcher, daemon=True)
    sim.spawn("p", writer)
    sim.run()
    return seen


def run_bus_transactions(n):
    sim = Simulator()
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    mem = Memory("mem", sim=sim, base=0, size_words=64)
    bus.register_slave(mem)

    def body():
        for i in range(n):
            yield from bus.write(0, i, master="cpu")

    sim.spawn("cpu", body)
    sim.run()
    return bus.monitor.transaction_count


class TestKernelThroughput:
    def test_timed_event_throughput(self, benchmark):
        count = benchmark(run_timed_events, 5_000)
        assert count == 5_000

    def test_event_pingpong_throughput(self, benchmark):
        hops = benchmark(run_event_pingpong, 2_000)
        assert hops == 2_000

    def test_signal_update_throughput(self, benchmark):
        seen = benchmark(run_signal_updates, 2_000)
        assert seen == 2_000

    def test_bus_transaction_throughput(self, benchmark):
        count = benchmark(run_bus_transactions, 1_000)
        assert count == 1_000
