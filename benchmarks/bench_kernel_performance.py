"""Kernel performance micro-benchmarks.

Not a paper artifact — these measure the simulation engine itself (events,
context switches of the coroutine scheduler, signal updates, bus
transactions) so regressions in the substrate's throughput are visible.
The assertions are generous sanity floors, not performance contracts.

The workload definitions live in ``tools/bench_kernel.py`` (the standalone
harness that records ``BENCH_kernel.json``); this module wraps the same
functions in pytest-benchmark fixtures so both views measure identical
code.  ``tools/`` is not a package, so the harness is loaded by file path.
"""

import importlib.util
import pathlib

import pytest

_HARNESS_PATH = pathlib.Path(__file__).resolve().parent.parent / "tools" / "bench_kernel.py"
_spec = importlib.util.spec_from_file_location("bench_kernel_harness", _HARNESS_PATH)
_harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_harness)

run_timed_events = _harness.run_timed_events
run_event_pingpong = _harness.run_event_pingpong
run_signal_fanout = _harness.run_signal_fanout
run_delta_heavy = _harness.run_delta_heavy
run_bus_transactions = _harness.run_bus_transactions


class TestKernelThroughput:
    def test_timed_event_throughput(self, benchmark):
        count = benchmark(run_timed_events, 5_000)
        assert count == 5_000

    def test_event_pingpong_throughput(self, benchmark):
        hops = benchmark(run_event_pingpong, 2_000)
        assert hops == 2_000

    def test_signal_fanout_throughput(self, benchmark):
        seen = benchmark(run_signal_fanout, 2_000)
        assert seen == 2_000

    def test_delta_heavy_throughput(self, benchmark):
        wakeups = benchmark(run_delta_heavy, 2_000)
        assert wakeups == 2_000

    def test_bus_transaction_throughput(self, benchmark):
        count = benchmark(run_bus_transactions, 1_000)
        assert count == 1_000
