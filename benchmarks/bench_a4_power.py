"""A4 — Section 5.3 future work: power/energy accounting.

Runs the instrumented DRCF and regenerates per-context energy breakdowns
(active / reconfiguration / fabric leakage), then compares against the
Figure 1(a) alternative where every block is a dedicated, always-leaking
unit.

Expected shape: energy follows the instrumented time breakdown exactly;
the DRCF pays reconfiguration energy the static design does not, while the
static design leaks on the *sum* of all block gates over the whole window
— so fabric sharing wins total energy once idle windows dominate.
"""

import pytest

from repro.core import PowerModel
from repro.dse import format_table
from repro.kernel import us
from tests.core.helpers import DrcfRig, small_tech

ACCESSES = [0, 1, 2, 0, 1, 2]


def run_with_idle(idle_us):
    tech = small_tech(
        context_slots=1,
        active_power_w_per_gate_mhz=1e-7,
        config_power_w=0.05,
        idle_power_w_per_gate=2e-9,
    )
    rig = DrcfRig(n_contexts=3, tech=tech, context_gates=3000)

    def body():
        for index in ACCESSES:
            yield from rig.master_read(rig.addr(index))
            if idle_us:
                yield us(idle_us)

    rig.sim.spawn("p", body)
    rig.sim.run()
    model = PowerModel(tech)
    window = rig.sim.now
    dynamic = model.drcf_total(rig.drcf, window)
    active_times = {
        c.name: rig.drcf.stats.context(c.name).active_time for c in rig.drcf.contexts
    }
    static = model.static_accelerators_total(rig.drcf.contexts, active_times, window)
    return rig, model, dynamic, static


def test_a4_energy_accounting(benchmark, save_table):
    rig, model, dynamic, static = benchmark.pedantic(
        run_with_idle, args=(0,), rounds=2, iterations=1
    )
    report = model.drcf_report(rig.drcf)

    # Energy mirrors the instrumented time breakdown.
    for context in rig.drcf.contexts:
        stats = rig.drcf.stats.context(context.name)
        expected_active = model.active_energy(context.gates, stats.active_time)
        assert report[context.name].active_j == pytest.approx(expected_active)
        expected_reconfig = model.reconfig_energy(stats.reconfig_time)
        assert report[context.name].reconfig_j == pytest.approx(expected_reconfig)

    # The DRCF pays reconfiguration energy the static design does not.
    assert dynamic.reconfig_j > 0
    assert static.reconfig_j == 0

    rows = [
        {"context": name, "active_uj": part.active_j * 1e6,
         "reconfig_uj": part.reconfig_j * 1e6, "idle_uj": part.idle_j * 1e6}
        for name, part in report.items()
    ]
    save_table(
        "a4_power_breakdown",
        format_table(rows, title="A4: per-context energy breakdown (back-to-back run)"),
    )


def test_a4_sharing_wins_when_idle_dominates(benchmark, save_table):
    def sweep():
        rows = []
        for idle_us in (0, 2_000, 100_000):
            _, _, dynamic, static = run_with_idle(idle_us)
            rows.append(
                {
                    "idle_per_job_us": idle_us,
                    "drcf_total_uj": dynamic.total_j * 1e6,
                    "static_total_uj": static.total_j * 1e6,
                    "drcf_wins": dynamic.total_j < static.total_j,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The static design's leakage advantage-gap grows with idle time: the
    # ratio static/drcf rises monotonically, and with long idle windows the
    # shared fabric (one context's leakage instead of three blocks') wins.
    ratios = [row["static_total_uj"] / row["drcf_total_uj"] for row in rows]
    assert ratios == sorted(ratios)
    assert rows[-1]["drcf_wins"]
    save_table(
        "a4_power_sweep",
        format_table(rows, title="A4: DRCF vs dedicated blocks, energy vs idle time"),
    )
