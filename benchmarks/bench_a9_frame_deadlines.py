"""A9 — ablation: sustainable frame rates per technology.

Frame-structured workloads (the paper's motivating domain) impose a
deadline: each frame must finish before the next arrives.  This bench
sweeps the frame period across architectures and reports the deadline
miss rate — the system-level answer to "which technology sustains this
standard's frame rate?".

Expected shape: dedicated hardware sustains every swept period; the
coarse-grain multi-context fabric sustains moderate periods; the
fine-grain single-context FPGA misses everything until the period exceeds
its per-frame reconfiguration cost, with the backlog growing monotonically
below that point.
"""

import pytest

from repro.apps import (
    FrameSource,
    RealTimeReport,
    frame_consumer_task,
    frame_interleaved_jobs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
)
from repro.dse import format_table
from repro.kernel import Simulator, us
from repro.tech import MORPHOSYS, VARICORE

ACCELS = ("fir", "xtea")
N_FRAMES = 6
PERIODS_US = [10, 40, 400, 2000]


def run_point(arch, period_us):
    if arch == "dedicated":
        netlist, info = make_baseline_netlist(ACCELS)
    elif arch == "morphosys":
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=MORPHOSYS)
    else:
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=VARICORE)
    sim = Simulator()
    design = netlist.elaborate(sim)

    def make_frame(index):
        return frame_interleaved_jobs(ACCELS, 1, seed=100 + index)

    source = FrameSource(
        "frames", parent=design.top, period=us(period_us),
        n_frames=N_FRAMES, make_frame=make_frame,
    )
    records = []
    design["cpu"].run_task(
        frame_consumer_task(source, info.accel_bases, records,
                            buffer_words=info.buffer_words)
    )
    sim.run()
    report = RealTimeReport(deadline_ns=period_us * 1e3, records=records)
    return {
        "architecture": arch,
        "period_us": period_us,
        "miss_rate": report.miss_rate,
        "mean_latency_us": report.mean_latency_ns / 1e3,
        "backlog_grows": report.backlog_grows(),
    }


@pytest.fixture(scope="module")
def rows():
    return [
        run_point(arch, period)
        for arch in ("dedicated", "morphosys", "varicore")
        for period in PERIODS_US
    ]


def test_a9_frame_deadlines(benchmark, rows, save_table):
    benchmark.pedantic(run_point, args=("morphosys", 100), rounds=2, iterations=1)

    def pick(arch, period):
        for row in rows:
            if row["architecture"] == arch and row["period_us"] == period:
                return row
        raise KeyError((arch, period))

    # Dedicated hardware sustains every swept period.
    for period in PERIODS_US:
        assert pick("dedicated", period)["miss_rate"] == 0.0

    # Miss rates are monotonically non-increasing in the period for every
    # architecture (longer deadlines can only help).
    for arch in ("dedicated", "morphosys", "varicore"):
        rates = [pick(arch, p)["miss_rate"] for p in PERIODS_US]
        assert rates == sorted(rates, reverse=True)

    # The sustainable-rate crossovers: the multi-context fabric (both
    # contexts resident after frame 0, ~16.5 us/frame) fails only the
    # 10 us period; the single-context fabric (two ~200 us switches per
    # frame) needs a period past ~400 us.
    assert pick("morphosys", 10)["miss_rate"] > 0.0
    assert pick("morphosys", 40)["miss_rate"] == 0.0
    assert pick("varicore", 40)["miss_rate"] == 1.0
    assert pick("varicore", 40)["backlog_grows"]
    assert pick("varicore", 400)["miss_rate"] == 0.0

    save_table(
        "a9_frame_deadlines",
        format_table(rows, title="A9: deadline miss rate vs frame period"),
    )
