"""E8 — Section 4 critique of ref [8]: unmodeled configuration traffic.

The OCAPI-XL-style baseline models the context-switch *delay* but not the
memory traffic.  This bench runs both models under increasing background
bus load and regenerates the divergence series.

Expected shape: the ref-[8] model underestimates execution time, its error
grows monotonically with bus contention, and it reports zero configuration
words while the full model's config traffic also slows the *other* bus
masters — the coupling a traffic-less model cannot express.
"""

import pytest

from repro.dse import Explorer, ParameterSpace, evaluate_architecture, format_table

#: Background generator mean gap in bus cycles; smaller = heavier load.
LOADS = [("none", None), ("light", 100), ("heavy", 5)]


def run_pair(gap):
    base = {
        "tech": "varicore",
        "accels": ("fir", "fft"),
        "n_frames": 2,
        "workload": "interleaved",
    }
    if gap is not None:
        base["background_gap_cycles"] = gap
    full = evaluate_architecture(dict(base))
    ref8 = evaluate_architecture(dict(base, baseline_model="ref8"))
    return full, ref8


def build_rows():
    rows = []
    for label, gap in LOADS:
        full, ref8 = run_pair(gap)
        error = (full["makespan_us"] - ref8["makespan_us"]) / full["makespan_us"]
        rows.append(
            {
                "background_load": label,
                "full_makespan_us": full["makespan_us"],
                "ref8_makespan_us": ref8["makespan_us"],
                "underestimate": error,
                "full_config_words": full["bus_config_words"],
                "ref8_config_words": ref8["bus_config_words"],
                "full_bus_util": full["bus_utilization"],
            }
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return build_rows()


def test_e8_ref8_divergence(benchmark, rows, save_table):
    benchmark.pedantic(run_pair, args=(None,), rounds=1, iterations=1)

    # The baseline generates no configuration traffic at all (the quoted
    # limitation), while the full model does.
    for row in rows:
        assert row["ref8_config_words"] == 0
        assert row["full_config_words"] > 0
        # And it always underestimates.
        assert row["ref8_makespan_us"] < row["full_makespan_us"]

    # The error grows monotonically with background load.
    errors = [row["underestimate"] for row in rows]
    assert errors == sorted(errors)
    assert errors[-1] > errors[0]

    save_table(
        "e8_ref8_baseline",
        format_table(
            rows,
            title="E8: full traffic model vs ref-[8]-style (delay-only) model",
        ),
    )
