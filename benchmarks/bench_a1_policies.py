"""A1 — ablation: context replacement policies.

The paper defers context selection/allocation to its ref [5]; this
ablation measures how the standard replacement policies behave on a
multi-context fabric hosting more contexts than slots.

Expected shape: on a reuse-heavy access pattern LRU beats FIFO beats
random in foreground fetch misses; pinning the hottest context protects
it; on a pure cyclic pattern (no reuse locality) LRU degenerates to
all-miss like everything else.
"""

import pytest

from repro.core import FifoPolicy, LruPolicy, PinnedLruPolicy, RandomPolicy
from repro.dse import format_table
from tests.core.helpers import DrcfRig, small_tech

#: Reuse-heavy pattern: s0 is hot, s1-s3 rotate through the second slot.
REUSE_PATTERN = [0, 1, 0, 2, 0, 3, 0, 1, 0, 2, 0, 3]
#: Cyclic pattern with working set > slots: worst case for every policy.
CYCLIC_PATTERN = [0, 1, 2, 3] * 3


def run_policy(policy, accesses):
    tech = small_tech(context_slots=2)
    rig = DrcfRig(
        n_contexts=4, tech=tech, context_gates=1500, policy=policy
    )

    def body():
        for index in accesses:
            yield from rig.master_read(rig.addr(index))

    rig.sim.spawn("p", body)
    rig.sim.run()
    stats = rig.drcf.stats
    return {
        "misses": stats.fetch_misses,
        "hits": stats.resident_hits,
        "makespan_us": rig.sim.now.to_us(),
    }


def build_rows():
    policies = [
        ("lru", LruPolicy()),
        ("fifo", FifoPolicy()),
        ("random", RandomPolicy(seed=4)),
        ("pinned_lru(s0)", PinnedLruPolicy(pinned=["s0"])),
    ]
    rows = []
    for name, policy in policies:
        for pattern_name, pattern in (("reuse", REUSE_PATTERN), ("cyclic", CYCLIC_PATTERN)):
            result = run_policy(policy, pattern)
            rows.append({"policy": name, "pattern": pattern_name, **result})
    return rows


@pytest.fixture(scope="module")
def rows():
    return build_rows()


def by(rows, policy, pattern):
    for row in rows:
        if row["policy"] == policy and row["pattern"] == pattern:
            return row
    raise KeyError((policy, pattern))


def test_a1_replacement_policies(benchmark, rows, save_table):
    benchmark.pedantic(run_policy, args=(LruPolicy(), REUSE_PATTERN), rounds=2, iterations=1)

    # On the reuse pattern the hot context s0 stays resident under LRU:
    # it is fetched once and every one of its 5 revisits hits.
    assert by(rows, "lru", "reuse")["hits"] == 5
    assert by(rows, "lru", "reuse")["misses"] <= by(rows, "fifo", "reuse")["misses"]
    assert by(rows, "lru", "reuse")["misses"] <= by(rows, "random", "reuse")["misses"]

    # On the cyclic pattern with working set 4 > 2 slots, LRU is the
    # pathological policy: every access misses.
    assert by(rows, "lru", "cyclic")["misses"] == len(CYCLIC_PATTERN)
    # Pinning the recurring context protects it even under cyclic access:
    # its 2 revisits hit, so the pin strictly beats plain LRU here...
    assert by(rows, "pinned_lru(s0)", "cyclic")["misses"] < by(rows, "lru", "cyclic")["misses"]
    assert (
        by(rows, "pinned_lru(s0)", "cyclic")["makespan_us"]
        < by(rows, "lru", "cyclic")["makespan_us"]
    )

    # Sanity: hits + misses == switches implied by the pattern.
    for row in rows:
        pattern = REUSE_PATTERN if row["pattern"] == "reuse" else CYCLIC_PATTERN
        switches = 1 + sum(1 for a, b in zip(pattern, pattern[1:]) if a != b)
        assert row["misses"] + row["hits"] == switches

    save_table(
        "a1_policies",
        format_table(rows, title="A1: replacement policies on a 2-slot fabric, 4 contexts"),
    )
