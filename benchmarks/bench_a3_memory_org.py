"""A3 — Section 5.3's promised memory-organization study.

"In addition, this methodology may be used to measure the effects of
different memory organizations or implementation to the total system
performance."  This bench varies exactly those knobs: shared vs dedicated
configuration bus, configuration-memory latency, and fetch burst length.

Expected shape: a dedicated configuration bus removes config traffic from
the component interface bus (lower data-bus utilization, equal-or-better
makespan); higher configuration-memory latency hurts, and longer fetch
bursts amortize it away.
"""

import pytest

from repro.dse import Explorer, ParameterSpace, evaluate_architecture, format_points

BASE = {
    "tech": "varicore",
    "accels": ("fir", "fft"),
    "n_frames": 2,
    "workload": "interleaved",
}


def sweep():
    space = (
        ParameterSpace()
        .add_axis("dedicated_config_bus", [False, True])
        .add_axis("cfg_latency_cycles", [2, 32])
        .add_axis("config_burst_words", [8, 64])
    )
    points = Explorer(lambda p: evaluate_architecture({**BASE, **p})).run(space)
    return points


@pytest.fixture(scope="module")
def points():
    return sweep()


def select(points, **criteria):
    for p in points:
        if all(p.params[k] == v for k, v in criteria.items()):
            return p.metrics
    raise KeyError(criteria)


def test_a3_memory_organizations(benchmark, points, save_table):
    benchmark.pedantic(
        lambda: evaluate_architecture({**BASE, "dedicated_config_bus": True}),
        rounds=2,
        iterations=1,
    )

    # Dedicated config bus: the interface bus carries no config words.
    shared = select(points, dedicated_config_bus=False, cfg_latency_cycles=2, config_burst_words=64)
    private = select(points, dedicated_config_bus=True, cfg_latency_cycles=2, config_burst_words=64)
    assert shared["bus_config_words"] > 0
    assert private["bus_config_words"] == 0
    assert private["bus_utilization"] < shared["bus_utilization"]
    assert private["makespan_us"] <= shared["makespan_us"] * 1.05

    # Slower configuration memory hurts; longer bursts amortize it.
    for dedicated in (False, True):
        fast = select(points, dedicated_config_bus=dedicated, cfg_latency_cycles=2, config_burst_words=64)
        slow = select(points, dedicated_config_bus=dedicated, cfg_latency_cycles=32, config_burst_words=64)
        slow_small_burst = select(
            points, dedicated_config_bus=dedicated, cfg_latency_cycles=32, config_burst_words=8
        )
        assert slow["makespan_us"] > fast["makespan_us"]
        assert slow_small_burst["makespan_us"] > slow["makespan_us"]

    save_table(
        "a3_memory_org",
        format_points(
            points,
            param_keys=("dedicated_config_bus", "cfg_latency_cycles", "config_burst_words"),
            metric_keys=("makespan_us", "reconfig_time_us", "bus_config_words", "bus_utilization"),
            title="A3: memory organization study (Section 5.3)",
        ),
    )
