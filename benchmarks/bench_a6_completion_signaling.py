"""A6 — ablation: STATUS polling vs interrupt-driven completion.

The methodology's central accuracy argument is that *bus traffic* decides
system-level performance.  Completion signaling is a software design choice
with exactly that character: a polling driver loads the bus with STATUS
reads that an interrupt-driven driver avoids.  This bench runs the same
job stream both ways on the baseline SoC and on a DRCF SoC.

Expected shape: identical outputs; IRQ mode issues strictly fewer bus
reads; the saved traffic matters most when the bus is also carrying
configuration fetches (the DRCF case).
"""

import pytest

from repro.apps import golden_outputs, make_baseline_netlist, make_reconfigurable_netlist
from repro.apps.driver import run_accelerator_job
from repro.apps.workloads import frame_interleaved_jobs
from repro.bus import InterruptController
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import MORPHOSYS

ACCELS = ("fir", "xtea")
IRQ_BASE = 0x3000_0000


def run_mode(architecture, mode, n_frames=2):
    if architecture == "baseline":
        netlist, info = make_baseline_netlist(ACCELS)
    else:
        netlist, info = make_reconfigurable_netlist(ACCELS, tech=MORPHOSYS)
    netlist.add("irqc", InterruptController, slave_of="system_bus", base=IRQ_BASE)
    sim = Simulator()
    design = netlist.elaborate(sim)
    jobs = frame_interleaved_jobs(ACCELS, n_frames, seed=9)

    # Wire accelerator completion lines (works both standalone and inside
    # the DRCF: the wrapped modules are children of drcf1).
    irqc = design["irqc"]
    accel_of = {}
    for name in ACCELS:
        module = design[name] if name in design else design["drcf1"].child(name)
        module.connect_irq(irqc)
        accel_of[name] = module

    results = []

    def task(cpu):
        for spec in jobs:
            irq = (irqc, accel_of[spec.accel].irq_source) if mode == "irq" else None
            out = yield from run_accelerator_job(
                cpu,
                info.accel_bases[spec.accel],
                spec.inputs,
                param=spec.param,
                coefs=spec.coefs,
                n_outputs=spec.n_outputs,
                buffer_words=info.buffer_words,
                irq=irq,
            )
            results.append((spec, out))

    design["cpu"].run_task(task, name="wl")
    sim.run()
    assert len(results) == len(jobs)
    for spec, out in results:
        assert out == golden_outputs(spec), spec.label
    return {
        "architecture": architecture,
        "signaling": mode,
        "makespan_us": sim.now.to_us(),
        "cpu_bus_reads": design["cpu"].bus_reads,
        "bus_total_words": design["system_bus"].monitor.total_words,
    }


@pytest.fixture(scope="module")
def rows():
    return [
        run_mode(arch, mode)
        for arch in ("baseline", "drcf")
        for mode in ("poll", "irq")
    ]


def test_a6_polling_vs_irq(benchmark, rows, save_table):
    benchmark.pedantic(run_mode, args=("baseline", "irq"), rounds=2, iterations=1)

    def pick(arch, mode):
        for row in rows:
            if row["architecture"] == arch and row["signaling"] == mode:
                return row
        raise KeyError((arch, mode))

    for arch in ("baseline", "drcf"):
        poll, irq = pick(arch, "poll"), pick(arch, "irq")
        # Interrupts remove the STATUS poll reads from the bus.
        assert irq["cpu_bus_reads"] < poll["cpu_bus_reads"]
        assert irq["bus_total_words"] < poll["bus_total_words"]

    save_table(
        "a6_completion_signaling",
        format_table(rows, title="A6: polling vs interrupt-driven completion"),
    )
