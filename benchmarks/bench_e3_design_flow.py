"""E3 — Figure 3: the ADRIATIC design flow, end to end.

Runs all system-level stages of the flow on a wireless-style application:
executable specification → architecture template → profiling-driven
partitioning (the Section 5.1 rules of thumb) → DRCF mapping →
system-level simulation of both architectures → back-annotation re-run.

Expected shape: the rules select the time-multiplexed same-sized blocks,
both architectures match the executable specification bit-exactly, and
back-annotated (larger) reconfiguration delays re-simulate without any
model surgery — the property the flow is designed around.
"""

import pytest

from repro.dse import AdriaticFlow, format_table
from repro.tech import VARICORE

ACCELS = ("fir", "fft", "viterbi", "xtea")


def run_flow():
    flow = AdriaticFlow(
        ACCELS,
        tech=VARICORE,
        n_frames=2,
        designer_flags={"xtea": {"spec_change_expected": True}},
    )
    return flow.run(back_annotate_scale=4.0)


@pytest.fixture(scope="module")
def result():
    return run_flow()


def test_e3_adriatic_flow(benchmark, result, save_table):
    benchmark.pedantic(run_flow, rounds=1, iterations=1)

    # Stage 1: the executable specification produced golden vectors.
    assert len(result.golden) == len(ACCELS) * 2

    # Stage 3: profiling + rules picked all four blocks (same-sized,
    # strictly time-multiplexed on one CPU) and recorded the rationale.
    assert set(result.recommendation.candidates) == set(ACCELS)
    assert any("rule1" in r for r in result.recommendation.reason("fir"))
    assert any("rule2" in r for r in result.recommendation.reason("xtea"))

    # Stage 4-5: transformation applied; both simulations verified against
    # the spec; the mapped run pays measurable reconfiguration.
    assert result.baseline_run.outputs_match_spec
    assert result.mapped_run is not None and result.mapped_run.outputs_match_spec
    assert result.mapped_run.switches > 0
    assert result.mapped_run.bus_config_words > 0
    assert result.baseline_run.bus_config_words == 0

    # Stage 6: back-annotation (4x extra delays) slows the mapped run and
    # still verifies.
    back = result.back_annotated_run
    assert back is not None and back.outputs_match_spec
    assert back.makespan_us > result.mapped_run.makespan_us

    profile_rows = [
        {
            "block": p.name,
            "gates": p.gates,
            "utilization": p.utilization,
            "reasons": "; ".join(result.recommendation.reason(p.name)) or "-",
        }
        for p in result.profiles
    ]
    save_table(
        "e3_design_flow",
        format_table(profile_rows, title="E3: partitioning-stage profile + rationale")
        + "\n\n"
        + format_table(result.summary_rows(), title="E3: flow stage comparison"),
    )
