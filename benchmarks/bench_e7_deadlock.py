"""E7 — Section 5.4, limitation 3: the bus deadlock and its remedies.

Reproduces the paper's condition exactly: blocking interface methods on a
shared context-memory/interface bus deadlock (the CPU holds the bus for a
call into the DRCF; the DRCF needs the bus to fetch the context), while
split transactions or a dedicated configuration bus complete normally.

Expected shape: deadlock occurs *iff* (blocking protocol AND shared bus).
"""

import pytest

from repro.analysis import diagnose
from repro.apps import JobRunner, frame_interleaved_jobs, make_reconfigurable_netlist
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import VIRTEX2PRO

CONFIGS = [
    {"label": "blocking + shared bus", "bus_protocol": "blocking", "dedicated_config_bus": False},
    {"label": "split + shared bus", "bus_protocol": "split", "dedicated_config_bus": False},
    {"label": "blocking + dedicated cfg bus", "bus_protocol": "blocking", "dedicated_config_bus": True},
    {"label": "split + dedicated cfg bus", "bus_protocol": "split", "dedicated_config_bus": True},
]


def run_config(config):
    netlist, info = make_reconfigurable_netlist(
        ("fir", "fft"),
        tech=VIRTEX2PRO,
        bus_protocol=config["bus_protocol"],
        dedicated_config_bus=config["dedicated_config_bus"],
    )
    sim = Simulator()
    design = netlist.elaborate(sim)
    jobs = frame_interleaved_jobs(("fir", "fft"), 1, seed=5)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    buses = [design["system_bus"]]
    if config["dedicated_config_bus"]:
        buses.append(design["config_bus"])
    report = diagnose(sim, buses=buses)
    return {
        "configuration": config["label"],
        "deadlocked": report.deadlocked,
        "jobs_completed": f"{len(runner.results)}/{len(jobs)}",
        "wait_for": report.chains[0] if report.chains else "-",
    }


@pytest.fixture(scope="module")
def rows():
    return [run_config(c) for c in CONFIGS]


def test_e7_deadlock_condition(benchmark, rows, save_table):
    benchmark.pedantic(run_config, args=(CONFIGS[0],), rounds=2, iterations=1)

    by_label = {row["configuration"]: row for row in rows}
    # Deadlock iff blocking protocol AND shared config/interface bus —
    # exactly the paper's condition.
    assert by_label["blocking + shared bus"]["deadlocked"]
    assert by_label["blocking + shared bus"]["jobs_completed"] != "2/2"
    for remedy in (
        "split + shared bus",
        "blocking + dedicated cfg bus",
        "split + dedicated cfg bus",
    ):
        assert not by_label[remedy]["deadlocked"], remedy
        assert by_label[remedy]["jobs_completed"] == "2/2"

    # The recovered wait-for chain names the paper's cycle: the DRCF queued
    # behind the master whose transfer it is servicing.
    chain = by_label["blocking + shared bus"]["wait_for"]
    assert "drcf1" in chain and "cpu" in chain

    save_table(
        "e7_deadlock",
        format_table(rows, title="E7: Section 5.4 deadlock condition matrix"),
    )
