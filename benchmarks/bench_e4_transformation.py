"""E4 — Figure 4 + Section 5.2 listings: the automatic transformation.

Regenerates the paper's before/after code listings and checks the
transformation is faithful on both axes the paper demonstrates:

* *structural*: the generated DRCF carries the analyzed ports/interfaces,
  contains the candidates' declarations/constructors/bindings, and the
  `top` rewrite swaps candidates for the DRCF at the same bus position;
* *behavioural*: the original netlist, the netlist rebuilt by executing
  the generated construction source, and the transformed netlist all
  produce bit-identical outputs; timing differs only by the modeled
  reconfiguration overhead.
"""

import pytest

from repro.apps import (
    JobRunner,
    golden_outputs,
    make_baseline_netlist,
    random_mix_jobs,
)
from repro.core import (
    default_env,
    exec_build_source,
    generate_build_source,
    generate_drcf_listing,
    transform_to_drcf,
)
from repro.kernel import Simulator
from repro.tech import VARICORE

CANDIDATES = ["fir", "fft"]


def do_transform():
    netlist, info = make_baseline_netlist(tuple(CANDIDATES))
    result = transform_to_drcf(
        netlist, CANDIDATES, tech=VARICORE,
        config_memory="cfgmem", config_base=info.cfg_base,
    )
    return netlist, info, result


def run_jobs(netlist, info, jobs):
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="wl")
    sim.run()
    return sim, design, runner


@pytest.fixture(scope="module")
def artifacts():
    return do_transform()


def test_e4_structural_fidelity(benchmark, artifacts, save_table):
    benchmark.pedantic(do_transform, rounds=3, iterations=1)
    netlist, info, result = artifacts

    # Phase 1 analysis carried onto the template.
    listing = generate_drcf_listing(result.report)
    assert "class drcf_drcf1(Module, BusSlaveIf):" in listing
    assert "arb_and_instr" in listing
    for name in CANDIDATES:
        analysis = result.report.module_analyses[name]
        assert analysis.interfaces == ["BusSlaveIf"]
        assert f"self.{name} = " in listing  # phase-2 constructor inserted

    # Phase 4 rewrite: DRCF replaces the candidates on the same bus, at the
    # first candidate's position; the rest of the netlist is untouched.
    before = netlist.component_names
    after = result.netlist.component_names
    assert after.index("drcf1") == before.index("fir")
    assert [n for n in after if n != "drcf1"] == [n for n in before if n not in CANDIDATES]

    source = generate_build_source(netlist)
    save_table(
        "e4_transformation",
        "E4: original construction source (SC_MODULE(top) analogue)\n"
        + "-" * 60 + "\n" + source + "\n"
        + "E4: generated DRCF component (drcf_own analogue)\n"
        + "-" * 60 + "\n" + listing,
    )


def test_e4_behavioural_equivalence(benchmark, artifacts):
    netlist, info, result = artifacts
    jobs = random_mix_jobs(tuple(CANDIDATES), 6, seed=3)

    def run_all():
        # (1) original netlist, (2) system rebuilt from generated source,
        # (3) transformed netlist.
        _, _, runner_orig = run_jobs(netlist, info, jobs)

        source = generate_build_source(netlist)
        sim_gen = Simulator()
        top = exec_build_source(source, sim_gen, default_env(netlist))
        bus = top.child("system_bus")
        from repro.cpu import Processor

        runner_gen = JobRunner(info.accel_bases, info.buffer_words)
        top.child("cpu").run_task(runner_gen.task(jobs), name="wl")
        sim_gen.run()

        sim_t, design_t, runner_t = run_jobs(result.netlist, info, jobs)
        return runner_orig, runner_gen, runner_t, design_t, sim_t

    runner_orig, runner_gen, runner_t, design_t, sim_t = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    for a, b, c in zip(runner_orig.results, runner_gen.results, runner_t.results):
        golden = golden_outputs(a.spec)
        assert a.outputs == b.outputs == c.outputs == golden

    # Timing difference is attributable: the transformed run is slower and
    # its DRCF accounted real reconfiguration time and config traffic.
    stats = design_t["drcf1"].stats
    assert stats.total_switches > 0
    assert stats.total_config_words > 0
    assert runner_t.total_latency_ns > runner_orig.total_latency_ns
