"""E2 — Figure 2: flexibility vs implementation efficiency.

Regenerates the trade-off chart as a table: the five architecture classes
with their MOPS/mW bands and flexibility ordinals, and the modeled
efficiency of each Chapter 3 technology preset placed into its class.

Expected shape: efficiency ordering GPP < embedded < DSP/ASIP <
reconfigurable < ASIC with the published factor-of-100–1000 span, and the
flexibility ordering exactly reversed.
"""

import pytest

from repro.dse import format_table
from repro.tech import (
    ASIC,
    MORPHOSYS,
    VARICORE,
    VIRTEX2PRO,
    efficiency_span_factor,
    efficiency_table,
    estimate_efficiency,
    instruction_processor_efficiency,
)

PRESETS = [VIRTEX2PRO, VARICORE, MORPHOSYS, ASIC]


def build_rows():
    rows = []
    for entry in efficiency_table(PRESETS):
        low, high = entry["band_mops_per_mw"]
        modeled = ", ".join(
            f"{name}={value:.0f}" for name, value in sorted(entry["modeled"].items())
        )
        rows.append(
            {
                "class": entry["label"],
                "flexibility": entry["flexibility"],
                "style": entry["computation_style"],
                "band_mops_per_mw": f"{low:g}-{high:g}",
                "modeled_mops_per_mw": modeled or "-",
            }
        )
    return rows


def test_e2_figure2_bands(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=5, iterations=1)

    # Flexibility strictly decreases down the chart while efficiency bands
    # strictly increase — the axis trade-off of Figure 2.
    flex = [row["flexibility"] for row in rows]
    assert flex == [5, 4, 3, 2, 1]

    # The published factor between processors and dedicated hardware.
    assert efficiency_span_factor() >= 100

    # Modeled presets respect the ordering: every reconfigurable preset
    # beats the instruction-processor bands, ASIC beats them all.
    dsp = instruction_processor_efficiency("dsp_asip")
    asic_value = estimate_efficiency(ASIC)
    for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
        value = estimate_efficiency(tech)
        assert dsp < value < asic_value

    save_table(
        "e2_efficiency_bands",
        format_table(rows, title="E2: Figure 2 flexibility/efficiency bands"),
    )
