#!/usr/bin/env python3
"""Design-space exploration across reconfigurable technologies.

The point of the paper's methodology: "true design space exploration at the
system-level, without the need to map the design first to an actual
technology implementation."  This sweep evaluates the same application on
the Chapter 3 technology presets and both workload localities — fanning
the points out over worker processes and reusing any previously simulated
point from the on-disk evaluation cache (delete ``.dse-cache/`` for a
cold run) — then prints the metric table and the latency/area Pareto
front.  See docs/DSE.md for the sweep engine.

Run:  python examples/dse_sweep.py
"""

from repro.dse import (
    EvalCache,
    Explorer,
    ParameterSpace,
    evaluate_architecture,
    evaluator_fingerprint,
    format_points,
    pareto_front,
)


def build_netlist():
    """A representative sweep point (`repro lint` entry)."""
    from repro.apps import make_reconfigurable_netlist
    from repro.tech import VIRTEX2PRO

    return make_reconfigurable_netlist(
        ("fir", "fft", "viterbi", "xtea"), tech=VIRTEX2PRO
    )


def main() -> None:
    space = (
        ParameterSpace()
        .add_axis("tech", ["asic", "virtex2pro", "varicore", "morphosys"])
        .add_axis("workload", ["interleaved", "batched"])
        .add_axis("n_frames", [2])
    )
    cache = EvalCache(".dse-cache", evaluator_fingerprint(evaluate_architecture))
    print(f"sweeping {space.size} design points (2 workers, cached) ...")
    report = Explorer(evaluate_architecture).sweep(space, workers=2, cache=cache)
    points = report.points
    stats = report.cache
    print(
        f"evaluated={report.evaluated}  cache hits={stats['hits']}  "
        f"misses={stats['misses']}  invalidated={stats['invalidated']}\n"
    )

    print(
        format_points(
            points,
            param_keys=("tech", "workload"),
            metric_keys=(
                "makespan_us",
                "switches",
                "reconfig_time_us",
                "bus_config_words",
                "area_um2",
            ),
            title="technology sweep (same application, same workload)",
        )
    )

    front = pareto_front(
        points,
        [
            ("makespan_us", "min"),
            ("area_um2", "min"),
            ("flexible", "max"),  # post-fabrication programmability (Figure 2's axis)
        ],
    )
    print("\nlatency/area/flexibility Pareto front:")
    for point in front:
        flexible = "flexible" if point.metrics["flexible"] else "fixed"
        print(
            f"  {point.params['tech']:<11} {point.params['workload']:<12} "
            f"makespan={point.metrics['makespan_us']:12.1f} us  "
            f"area={point.metrics['area_um2']:>12.0f} um^2  {flexible}"
        )
    print(
        "\nreading: dedicated ASIC wins latency and raw area but is fixed; among "
        "flexible mappings the dynamic fabric needs only the largest context "
        f"resident (saving "
        f"{max(p.metrics['area_saving_vs_static_fabric'] for p in points if p.ok):.0%} "
        "of fabric area vs keeping every block configured); fine-grain "
        "single-context fabrics only pay off when invocations batch."
    )


if __name__ == "__main__":
    main()
