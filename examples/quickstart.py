#!/usr/bin/env python3
"""Quickstart: build both Figure 1 architectures and compare them.

Builds the paper's baseline SoC (CPU + memory + dedicated accelerators on a
shared bus), runs a frame-structured workload, then rebuilds the same
application with the accelerators folded into a dynamically reconfigurable
fabric (DRCF) on a Virtex-II-Pro-style technology, runs the identical
workload, and prints the comparison the methodology is designed to produce:
end-to-end latency, context switches, reconfiguration time and the
configuration traffic that appeared on the memory bus.

Run:  python examples/quickstart.py
"""

from repro.analysis import collect_run_metrics, per_context_rows
from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
)
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import VIRTEX2PRO

ACCELS = ("fir", "fft", "viterbi", "xtea")


def build_netlist():
    """The reconfigurable architecture this demo runs (`repro lint` entry)."""
    return make_reconfigurable_netlist(ACCELS, tech=VIRTEX2PRO)


def run_architecture(netlist, info, jobs):
    """Elaborate, run the workload to completion, and gather metrics."""
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="workload")
    sim.run()
    assert len(runner.results) == len(jobs), "workload did not finish"
    for result in runner.results:
        assert result.outputs == golden_outputs(result.spec), (
            f"{result.spec.label}: outputs diverge from the executable spec"
        )
    drcf = design[info.drcf_name] if info.drcf_name else None
    report = collect_run_metrics(
        sim,
        bus=design["system_bus"],
        drcf=drcf,
        extra={"makespan_us": max(r.end_ns for r in runner.results) / 1e3},
    )
    return report, drcf


def main() -> None:
    jobs = frame_interleaved_jobs(ACCELS, n_frames=2, seed=7)
    print(f"workload: {len(jobs)} accelerator jobs over {ACCELS}\n")

    print("=== Figure 1(a): dedicated accelerators ===")
    baseline, info_a = make_baseline_netlist(ACCELS)
    report_a, _ = run_architecture(baseline, info_a, jobs)
    print(report_a.render("baseline metrics"))

    print("\n=== Figure 1(b): accelerators folded into a DRCF (Virtex-II Pro) ===")
    reconf, info_b = make_reconfigurable_netlist(ACCELS, tech=VIRTEX2PRO)
    report_b, drcf = run_architecture(reconf, info_b, jobs)
    print(report_b.render("DRCF metrics"))

    print("\nper-context instrumentation (Section 5.3, step 5):")
    print(format_table(per_context_rows(drcf)))

    slowdown = report_b["makespan_us"] / report_a["makespan_us"]
    print(
        f"\nsummary: DRCF run is {slowdown:.1f}x slower end-to-end; "
        f"{report_b['bus_config_words']} configuration words crossed the bus; "
        "all outputs matched the executable specification in both runs."
    )


if __name__ == "__main__":
    main()
