#!/usr/bin/env python3
"""Static model verification: catch broken architectures before simulating.

The transformation of Section 5.2 rewrites a declarative netlist, and the
paper's Section 5.4 limitations describe architectures that elaborate fine
but fail at runtime (most dramatically the limitation-3 bus deadlock).  The
linter checks a netlist — and its elaborated design — against those rules
statically, so a bad architecture is a diagnostic, not a hung simulation.

This demo builds two deliberately broken architectures and prints the
diagnostics the linter raises for each:

1. two DRCFs whose configuration regions were squeezed into overlapping
   windows of the shared configuration memory (REP301);
2. the paper's deadlock precondition — a DRCF that is both master and
   slave of one blocking bus (REP310, limitation 3).

The same checks run from the command line:

    python -m repro lint examples/lint_demo.py   # this file's build_netlist()
    python -m repro lint --builtin broken        # the REP301 architecture
    python -m repro lint --builtin deadlock      # the REP310 architecture

Run:  python examples/lint_demo.py
"""

from repro.analysis import run_lint
from repro.apps import make_multi_fabric_netlist, make_reconfigurable_netlist
from repro.tech import MORPHOSYS, VIRTEX2PRO


def build_netlist():
    """A healthy architecture (`repro lint` entry) — lints clean."""
    return make_reconfigurable_netlist(("fir", "fft"), tech=VIRTEX2PRO)


def main() -> None:
    print("=== healthy architecture ===")
    netlist, _ = build_netlist()
    print(run_lint(netlist).render())
    print()

    print("=== overlapping configuration regions (REP301) ===")
    broken, _ = make_multi_fabric_netlist(
        {"f1": (("fir",), MORPHOSYS), "f2": (("fft",), MORPHOSYS)},
        config_region_bytes=64,  # far too small: the regions collide
    )
    print(run_lint(broken).render())
    print()

    print("=== the Section 5.4 deadlock precondition (REP310) ===")
    deadlock, _ = make_reconfigurable_netlist(bus_protocol="blocking")
    print(run_lint(deadlock).render())


if __name__ == "__main__":
    main()
