#!/usr/bin/env python3
"""Fault-injection campaigns against the DRCF's recovery policies.

The paper models reconfiguration as always succeeding; this demo attacks
that assumption.  A campaign injects one configuration-path fault per
trial — a configuration-memory bit flip, a truncated bitstream transfer,
a transient bus read error, or a wedged configuration port — and
classifies every trial as ``masked`` / ``recovered`` / ``sdc`` / ``hang``
against the workload's executable specification.

Two campaigns over the same seeded fault grid make the policy trade
visible:

1. ``none``  — no mitigation: faults that land in a consumed bitstream
   become silent data corruption;
2. ``retry`` — readback verification plus bounded retry with exponential
   backoff: transients are recovered at a small makespan cost.

Run:  python examples/fault_campaign_demo.py
(Also try:  python -m repro inject --builtin modem --trials 64 --seed 7)
"""

from repro.apps import make_reconfigurable_netlist
from repro.faults import SCENARIOS, run_campaign
from repro.tech import VIRTEX2PRO

SCENARIO = SCENARIOS["minimal"]
TRIALS = 8
SEED = 7


def build_netlist():
    """The architecture under attack (also consumable by `repro lint`)."""
    return make_reconfigurable_netlist(
        SCENARIO.accels, tech=VIRTEX2PRO, bus_protocol="split"
    )


def main() -> None:
    reports = {}
    for recovery in ("none", "retry"):
        report = run_campaign(
            SCENARIO, trials=TRIALS, seed=SEED, recovery=recovery
        )
        reports[recovery] = report
        print(report.render())
        print()

    print("policy trade (same fault grid, same seeds):")
    for recovery, report in reports.items():
        coverage = "n/a" if report.coverage is None else f"{report.coverage:.0%}"
        overhead = (
            "n/a"
            if report.recovery_overhead is None
            else f"{report.recovery_overhead:+.2%}"
        )
        print(
            f"  {recovery:6s} coverage={coverage:>4s}  sdc={report.counts['sdc']}  "
            f"makespan overhead={overhead}"
        )


if __name__ == "__main__":
    main()
