#!/usr/bin/env python3
"""Process-body dataflow analysis: races, dead waits, and their confirmation.

The netlist-level linter (see ``lint_demo.py``) checks the *structure* of
an architecture.  The opt-in dataflow layer looks one level deeper — into
the **process bodies** themselves: each registered SC_THREAD/SC_METHOD
function is parsed with the Python ``ast`` module into an effect summary
(which signals it reads and writes, which events it waits on and
notifies), and the REP4xx rules check the resulting design-level graph:

* REP401 — two writers of one signal runnable in the same delta cycle;
* REP402 — a method reading a signal missing from its sensitivity list;
* REP403 — method processes retriggering each other in a loop;
* REP404 — a ``yield`` inside a method process (the body never runs);
* REP405 — a wait on an event nothing ever notifies.

Static findings are *possibilities*; the dynamic cross-check turns them
into evidence.  ``cross_check`` elaborates the netlist fresh, instruments
the raced signals, runs a short bounded simulation, and tags each
REP401/REP405 finding ``confirmed`` or ``unconfirmed``.

The same analysis runs from the command line:

    python -m repro lint examples/dataflow_demo.py --dataflow
    python -m repro lint examples/dataflow_demo.py --confirm

Run:  python examples/dataflow_demo.py
"""

from repro.analysis import cross_check, run_lint
from repro.apps import make_reconfigurable_netlist
from repro.core import Netlist
from repro.kernel import Event, Module, Signal, ns
from repro.tech import VIRTEX2PRO


def build_netlist():
    """A healthy architecture (`repro lint` entry) — REP4xx-clean."""
    return make_reconfigurable_netlist(("fir", "fft"), tech=VIRTEX2PRO)


class RacyStatus(Module):
    """Two always-runnable threads drive one status flag (REP401): the
    committed value depends on scheduler evaluation order."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.status = Signal(self.sim, 0, name=f"{self.full_name}.status")
        self.add_thread(self.monitor_a, name="monitor_a")
        self.add_thread(self.monitor_b, name="monitor_b")

    def monitor_a(self):
        while True:
            self.status.write(1)
            yield ns(100)

    def monitor_b(self):
        while True:
            self.status.write(2)
            yield ns(100)


class ForgottenHandshake(Module):
    """A consumer waits for a ``ready`` event the producer forgot to
    notify (REP405): the consumer is dead from its first wait on."""

    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.ready = Event(self.sim, f"{self.full_name}.ready")
        self.data = Signal(self.sim, 0, name=f"{self.full_name}.data")
        self.add_thread(self.producer, name="producer")
        self.add_thread(self.consumer, name="consumer")

    def producer(self):
        self.data.write(42)
        yield ns(10)
        # BUG: should call self.ready.notify() here

    def consumer(self):
        yield self.ready
        self.data.read()


def broken_netlist():
    netlist = Netlist("demo")
    netlist.add("racy", RacyStatus)
    netlist.add("handshake", ForgottenHandshake)
    return netlist


def main() -> None:
    print("=== healthy architecture (dataflow layer on) ===")
    netlist, _ = build_netlist()
    print(run_lint(netlist, dataflow=True).render())
    print()

    print("=== seeded race + dead wait (static findings) ===")
    broken = broken_netlist()
    report = run_lint(broken, dataflow=True)
    print(report.render())
    print()

    print("=== dynamic cross-check of the findings ===")
    statuses = cross_check(broken, report.diagnostics)
    for (code, location), status in sorted(statuses.items()):
        print(f"{code} {location}: {status}")


if __name__ == "__main__":
    main()
