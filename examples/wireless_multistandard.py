#!/usr/bin/env python3
"""The paper's motivating scenario: a field-upgradeable multi-standard modem.

Chapter 2 argues manufacturers adopt reconfigurable hardware because
products must "conform to multiple or migrating international standards"
and gain features after shipping.  This example plays that story out:

* **Product v1** ships a modem pipeline (FIR + FFT + Viterbi) mapped onto a
  MorphoSys-style fabric, alternating between two 'standards' (parameter
  sets) at runtime — low-cost adaptivity by sharing one fabric.
* **Field upgrade**: a security requirement arrives after fabrication; the
  XTEA cipher is added as a *new context* — only a new bitstream in
  configuration memory, no silicon change.  The dedicated-hardware product
  (Figure 1a) would have needed a re-spin.
* A background prefetcher (MorphoSys loads the inactive context bank while
  the array computes) hides part of the switching cost.

Run:  python examples/wireless_multistandard.py
"""

from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    golden_outputs,
    make_reconfigurable_netlist,
)
from repro.core import ContextPrefetcher, SequencePredictor
from repro.dse import format_table
from repro.kernel import Simulator
from repro.tech import ASIC, MORPHOSYS

V1_BLOCKS = ("fir", "fft", "viterbi")
V2_BLOCKS = ("fir", "fft", "viterbi", "xtea")


def build_netlist():
    """The full second-generation product architecture (`repro lint` entry)."""
    return make_reconfigurable_netlist(V2_BLOCKS, tech=MORPHOSYS)


def run(blocks, *, prefetch: bool, n_frames: int = 3, seed: int = 11):
    """Simulate one product configuration; returns a result row."""
    jobs = frame_interleaved_jobs(blocks, n_frames, seed=seed)
    netlist, info = make_reconfigurable_netlist(blocks, tech=MORPHOSYS)
    sim = Simulator()
    design = netlist.elaborate(sim)
    drcf = design[info.drcf_name]
    if prefetch:
        ContextPrefetcher(
            "prefetcher",
            parent=design.top,
            drcf=drcf,
            predictor=SequencePredictor(list(blocks)),
        )
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="modem")
    sim.run()
    assert all(r.outputs == golden_outputs(r.spec) for r in runner.results)
    stats = drcf.stats.summary()
    return {
        "blocks": "+".join(blocks),
        "prefetch": prefetch,
        "jobs": len(runner.results),
        "makespan_us": max(r.end_ns for r in runner.results) / 1e3,
        "switches": stats["switches"],
        "prefetch_hits": stats["prefetch_hits"],
        "reconfig_us": stats["reconfig_time_ns"] / 1e3,
        "fabric_gates": drcf.largest_context_gates(),
    }


def main() -> None:
    rows = [
        run(V1_BLOCKS, prefetch=False),
        run(V1_BLOCKS, prefetch=True),
        run(V2_BLOCKS, prefetch=False),  # after the field upgrade
        run(V2_BLOCKS, prefetch=True),
    ]
    print(format_table(rows, title="multi-standard modem on a MorphoSys-style fabric"))

    v1 = rows[0]
    v2 = rows[2]
    dedicated_gates_v2 = sum(
        {"fir": 12_000, "fft": 25_000, "viterbi": 30_000, "xtea": 8_000}[b]
        for b in V2_BLOCKS
    )
    print(
        f"\nfield upgrade added the cipher with zero silicon change: the fabric "
        f"still hosts {v2['fabric_gates']} gates (largest context), while the "
        f"Figure 1(a) product would now need {dedicated_gates_v2} gates of "
        f"dedicated logic — and a re-fabrication."
    )
    hidden = rows[2]["makespan_us"] - rows[3]["makespan_us"]
    print(
        f"background context loading hid {hidden:.1f} us of reconfiguration "
        f"({rows[3]['prefetch_hits']} prefetch hits)."
    )


if __name__ == "__main__":
    main()
