#!/usr/bin/env python3
"""The Section 5.2 transformation, end to end.

Reproduces the paper's code-listing walk-through: a hardware accelerator
(`hwa`) instantiated in a hierarchical `top` module is analyzed (phase 1:
ports and interfaces; phase 2: declaration, constructor, bindings), a DRCF
component is generated from the template (phase 3), and `top` is rewritten
to instantiate the DRCF instead (phase 4).  Both the original and the
transformed construction sources are printed, and both systems are run to
show behavioural equivalence modulo the modeled reconfiguration overhead.

Run:  python examples/transformation_demo.py
"""

from repro.apps import JobRunner, golden_outputs, make_baseline_netlist, random_mix_jobs
from repro.core import (
    analyze_module_spec,
    default_env,
    exec_build_source,
    generate_build_source,
    generate_drcf_listing,
    generate_transformation_diff,
    transform_to_drcf,
)
from repro.kernel import Simulator
from repro.tech import VARICORE


def build_netlist():
    """The post-transformation architecture (`repro lint` entry)."""
    netlist, info = make_baseline_netlist(("fir", "fft"))
    result = transform_to_drcf(
        netlist, ["fir", "fft"], tech=VARICORE,
        config_memory="cfgmem", config_base=info.cfg_base,
    )
    return result.netlist, info


def main() -> None:
    netlist, info = make_baseline_netlist(("fir", "fft"))

    print("=== phase 1: analysis of module ===")
    for name in ("fir", "fft"):
        analysis = analyze_module_spec(netlist.component(name))
        print(
            f"{name}: class={analysis.class_name} interfaces={analysis.interfaces} "
            f"ports={[p for p, _ in analysis.ports]} "
            f"range=[{analysis.low_addr:#x}..{analysis.high_addr:#x}]"
        )

    print("\n=== original top (the paper's first SC_MODULE(top) listing) ===")
    source = generate_build_source(netlist)
    print(source)

    print("=== phases 3-4: create DRCF, modify instance ===")
    result = transform_to_drcf(
        netlist, ["fir", "fft"], tech=VARICORE,
        config_memory="cfgmem", config_base=info.cfg_base,
    )
    print(generate_transformation_diff(netlist, result.netlist))

    print("=== generated DRCF component (the paper's drcf_own listing) ===")
    print(generate_drcf_listing(result.report))

    # Behavioural check: run the original via its *generated source* and the
    # transformed netlist on the same workload.
    jobs = random_mix_jobs(("fir", "fft"), 6, seed=3)

    sim_a = Simulator()
    exec_build_source(source, sim_a, default_env(netlist))
    # The generated source builds an identical system; drive it through a
    # fresh elaboration of the original netlist for the runner plumbing.
    sim_a2 = Simulator()
    design_a = netlist.elaborate(sim_a2)
    runner_a = JobRunner(info.accel_bases, info.buffer_words)
    design_a["cpu"].run_task(runner_a.task(jobs), name="wl")
    sim_a2.run()

    sim_b = Simulator()
    design_b = result.netlist.elaborate(sim_b)
    runner_b = JobRunner(info.accel_bases, info.buffer_words)
    design_b["cpu"].run_task(runner_b.task(jobs), name="wl")
    sim_b.run()

    same = all(
        a.outputs == b.outputs == golden_outputs(a.spec)
        for a, b in zip(runner_a.results, runner_b.results)
    )
    stats = design_b["drcf1"].stats.summary()
    print("functional equivalence (original == transformed == spec):", same)
    print(
        f"timing difference is the modeled overhead: {stats['switches']} switches, "
        f"{stats['reconfig_time_ns'] / 1e3:.1f} us reconfiguring, "
        f"{stats['config_words']} config words fetched"
    )


if __name__ == "__main__":
    main()
