#!/usr/bin/env python3
"""A full-featured SoC: two fabrics, prefetch, interrupts, waveform trace.

Combines the reproduction's extensions on one system — the "more complex
architectures" the paper says real designs need:

* a baseband fabric (MorphoSys preset: FIR + FFT, background prefetch) and
  a decode fabric (VariCore preset: Viterbi + XTEA) on one bus;
* interrupt-driven job completion instead of STATUS polling;
* a VCD waveform of both fabrics' active contexts, written to
  ``multifabric_modem.vcd``.

Run:  python examples/multifabric_modem.py
"""

from repro.apps import (
    frame_interleaved_jobs,
    golden_outputs,
    make_multi_fabric_netlist,
)
from repro.apps.driver import run_accelerator_job
from repro.bus import InterruptController
from repro.core import ContextPrefetcher, SequencePredictor
from repro.dse import format_table
from repro.kernel import Simulator, VcdTracer
from repro.tech import MORPHOSYS, VARICORE

GROUPS = {
    "fabric_bb": (("fir", "fft"), MORPHOSYS),
    "fabric_dec": (("viterbi", "xtea"), VARICORE),
}
ALL = ("fir", "fft", "viterbi", "xtea")


def build_netlist():
    """The two-fabric modem architecture (`repro lint` entry)."""
    netlist, info = make_multi_fabric_netlist(GROUPS)
    netlist.add("irqc", InterruptController, slave_of="system_bus", base=0x3000_0000)
    return netlist, info


def main() -> None:
    netlist, info = build_netlist()
    sim = Simulator()
    design = netlist.elaborate(sim)

    # Background prefetch on the MorphoSys fabric (its banked context
    # memory reloads while the array computes).
    ContextPrefetcher(
        "prefetcher",
        parent=design.top,
        drcf=design["fabric_bb"],
        predictor=SequencePredictor(["fir", "fft"]),
    )

    # Interrupt lines for every accelerator, wherever it lives.
    irqc = design["irqc"]
    accel_of = {}
    for fabric, (accels, _tech) in GROUPS.items():
        for name in accels:
            module = design[fabric].child(name)
            module.connect_irq(irqc)
            accel_of[name] = module

    # Waveform: both fabrics' context schedules.
    tracer = VcdTracer("multifabric_modem")
    for fabric in GROUPS:
        tracer.trace(design[fabric].active_context_signal, name=fabric, width=8)

    jobs = frame_interleaved_jobs(ALL, n_frames=3, seed=13)
    results = []

    def modem(cpu):
        for spec in jobs:
            out = yield from run_accelerator_job(
                cpu,
                info.accel_bases[spec.accel],
                spec.inputs,
                param=spec.param,
                coefs=spec.coefs,
                n_outputs=spec.n_outputs,
                buffer_words=info.buffer_words,
                irq=(irqc, accel_of[spec.accel].irq_source),
            )
            results.append((spec, out))

    design["cpu"].run_task(modem, name="modem")
    sim.run()

    ok = all(out == golden_outputs(spec) for spec, out in results)
    rows = []
    for fabric in GROUPS:
        stats = design[fabric].stats.summary()
        rows.append(
            {
                "fabric": fabric,
                "tech": design[fabric].tech.name,
                "calls": stats["calls"],
                "switches": stats["switches"],
                "fetch_misses": stats["fetch_misses"],
                "prefetch_hits": stats["prefetch_hits"],
                "reconfig_us": stats["reconfig_time_ns"] / 1e3,
            }
        )
    print(format_table(rows, title="per-fabric instrumentation"))
    print(f"\n{len(results)} jobs, outputs match executable spec: {ok}")
    print(f"makespan: {sim.now.to_us():.1f} us; "
          f"IRQs raised: {irqc.raised_count}; "
          f"bus words: {design['system_bus'].monitor.total_words}")
    tracer.dump("multifabric_modem.vcd")
    print(f"context-schedule waveform written to multifabric_modem.vcd "
          f"({tracer.change_count} value changes)")


if __name__ == "__main__":
    main()
