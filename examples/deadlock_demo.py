#!/usr/bin/env python3
"""Reproduce the Section 5.4 bus deadlock — and both remedies.

The paper's limitation 3: "The interface methods must be non-blocking or
must support split transactions if the context memory bus is the same as
the interface bus of the components. ... This results in deadlock of the
bus."

Three runs of the same workload:

1. blocking bus protocol, shared configuration memory → DEADLOCK (the CPU
   holds the bus for its call into the DRCF; the DRCF needs the same bus to
   fetch the context bitstream);
2. split-transaction bus (the paper's first remedy) → completes;
3. blocking bus but a dedicated configuration bus (the other memory
   organization) → completes.

Run:  python examples/deadlock_demo.py
"""

from repro.analysis import diagnose
from repro.apps import (
    JobRunner,
    frame_interleaved_jobs,
    make_reconfigurable_netlist,
)
from repro.kernel import Simulator
from repro.tech import VIRTEX2PRO


def build_netlist():
    """The fixed (split-transaction) variant — this one lints clean.

    The deliberately deadlocking architecture of run 1 is flagged
    statically by `python -m repro lint --builtin deadlock` (rule REP310
    on the netlist spec, REP601 on the elaborated wait-for graph with
    --interproc).
    """
    return make_reconfigurable_netlist(
        ("fir", "fft"), tech=VIRTEX2PRO, bus_protocol="split"
    )


def attempt(label: str, **soc_kwargs) -> None:
    jobs = frame_interleaved_jobs(("fir", "fft"), n_frames=1, seed=5)
    netlist, info = make_reconfigurable_netlist(
        ("fir", "fft"), tech=VIRTEX2PRO, **soc_kwargs
    )
    sim = Simulator()
    design = netlist.elaborate(sim)
    runner = JobRunner(info.accel_bases, info.buffer_words)
    design["cpu"].run_task(runner.task(jobs), name="workload")
    # The deadlock of run 1 starves the event queue, so the run returns by
    # itself; the wall-clock watchdog is belt-and-braces against livelocks
    # (it stops the run and attaches sim.watchdog_report instead of hanging).
    sim.run(max_wall_s=30.0)
    if sim.watchdog_fired:
        print(f"--- {label} ---")
        print(sim.watchdog_report.render())
        print(f"jobs completed before watchdog: {len(runner.results)}/{len(jobs)}")
        print()
        return
    report = diagnose(sim, buses=[design["system_bus"]])
    print(f"--- {label} ---")
    if report.deadlocked:
        print(report.render())
        print(f"jobs completed before deadlock: {len(runner.results)}/{len(jobs)}")
    else:
        print(f"completed: {len(runner.results)}/{len(jobs)} jobs at {sim.now}")
    print()


def main() -> None:
    attempt(
        "1. blocking protocol, shared config/interface bus (the paper's deadlock)",
        bus_protocol="blocking",
    )
    attempt(
        "2. split-transaction bus (remedy: interface methods support split)",
        bus_protocol="split",
    )
    attempt(
        "3. blocking bus + dedicated configuration bus (remedy: separate memory path)",
        bus_protocol="blocking",
        dedicated_config_bus=True,
    )


if __name__ == "__main__":
    main()
